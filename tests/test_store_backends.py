"""The storage-tier seam: backend protocol, local layout, leases.

``docs/store-backends.md`` is the written contract; these tests are its
drift check at the primitive level — the five backend operations, the
atomicity each backend must provide, and the lease lifecycle (acquire,
steal-after-stale, release) that the exact-GC and cross-sweep-dedupe
guarantees are built on.
"""

import http.client
import json
import os
import socket
import threading
import urllib.parse

import pytest

from repro.scenarios import (
    BackendError,
    EntryStat,
    FileLease,
    HTTPBackend,
    LocalBackend,
    StoreBackend,
    StoreServer,
)
from repro.scenarios.backends import MAX_BODY_BYTES

KEY_A = "aa" * 16
KEY_B = "bb" * 16


# ----------------------------------------------------------------- protocol

def test_both_shipped_backends_satisfy_the_protocol(tmp_path):
    # StoreBackend is runtime-checkable: the docs' claim that any tier
    # with these five operations can back a store is checkable in code
    assert isinstance(LocalBackend(str(tmp_path)), StoreBackend)
    assert isinstance(HTTPBackend("http://127.0.0.1:1"), StoreBackend)


# ------------------------------------------------------------ local backend

def test_local_backend_round_trip(tmp_path):
    backend = LocalBackend(str(tmp_path))
    assert backend.get(KEY_A) is None
    assert backend.stat(KEY_A) is None
    backend.put(KEY_A, b'{"key": "x"}')
    assert backend.get(KEY_A) == b'{"key": "x"}'
    stat = backend.stat(KEY_A)
    assert isinstance(stat, EntryStat) and stat.size == len(b'{"key": "x"}')
    backend.put(KEY_B, b"other")
    assert list(backend.iter_keys()) == sorted([KEY_A, KEY_B])
    backend.delete(KEY_A)
    assert backend.get(KEY_A) is None
    assert list(backend.iter_keys()) == [KEY_B]
    backend.delete(KEY_A)  # idempotent


def test_local_backend_put_leaves_no_temp_files(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b"data")
    leftovers = [name for _, _, names in os.walk(backend.objects_dir)
                 for name in names if name.endswith(".tmp")]
    assert leftovers == []


def test_local_backend_total_bytes_ignores_lease_files(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b"data")
    backend.touch_served(KEY_A)
    before = backend.total_bytes()
    lease = backend.lease(KEY_A)
    assert lease.try_acquire()
    # byte budgets are contracts about results, not coordination state
    assert backend.total_bytes() == before
    lease.release()


def test_abandoned_steal_files_are_cleaned_and_never_counted(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b"data")
    before = backend.total_bytes()
    shard = os.path.dirname(backend.path_for(KEY_A))
    leaked = os.path.join(shard, "leaked-crash.steal")
    with open(leaked, "w") as f:
        f.write("some dead stealer's token")
    assert backend.total_bytes() == before  # coordination debris
    os.utime(leaked, (1_000_000, 1_000_000))
    backend.remove_abandoned(grace_s=3600.0)
    assert not os.path.exists(leaked)


# ------------------------------------------------------------------- leases

def test_lease_excludes_a_second_acquirer(tmp_path):
    path = str(tmp_path / "x.lease")
    first, second = FileLease(path), FileLease(path)
    assert first.try_acquire()
    assert not second.try_acquire()
    assert second.held_by_other()
    first.release()
    assert not os.path.exists(path)
    assert second.try_acquire()
    second.release()


def test_stale_lease_is_stolen(tmp_path):
    path = str(tmp_path / "x.lease")
    dead = FileLease(path, steal_after=0.5)
    assert dead.try_acquire()
    # the holder "crashed" long ago: backdate the lease mtime
    os.utime(path, (1_000_000, 1_000_000))
    thief = FileLease(path, steal_after=0.5)
    assert thief.try_acquire()
    assert thief.owned
    # the original owner's release must not remove the thief's lease
    dead.release()
    assert os.path.exists(path)
    thief.release()
    assert not os.path.exists(path)


def test_refresh_keeps_a_lease_from_being_stolen(tmp_path):
    path = str(tmp_path / "x.lease")
    holder = FileLease(path, steal_after=3600.0)
    assert holder.try_acquire()
    os.utime(path, (1_000_000, 1_000_000))  # would be stealable...
    holder.refresh()                        # ...but the holder is alive
    thief = FileLease(path, steal_after=3600.0)
    assert not thief.try_acquire()
    holder.release()


def test_fresh_lease_is_not_stolen(tmp_path):
    path = str(tmp_path / "x.lease")
    holder = FileLease(path, steal_after=3600.0)
    assert holder.try_acquire()
    thief = FileLease(path, steal_after=3600.0)
    assert not thief.acquire(timeout=0.1)
    holder.release()


def test_blocking_acquire_waits_for_release(tmp_path):
    path = str(tmp_path / "x.lease")
    holder = FileLease(path)
    assert holder.try_acquire()
    release_soon = threading.Timer(0.15, holder.release)
    release_soon.start()
    waiter = FileLease(path)
    try:
        assert waiter.acquire(timeout=5.0)
    finally:
        release_soon.cancel()
        waiter.release()


def test_lease_context_manager_releases(tmp_path):
    path = str(tmp_path / "x.lease")
    lease = FileLease(path)
    assert lease.try_acquire()
    with lease:
        assert os.path.exists(path)
    assert not os.path.exists(path)


def test_lease_held_tracks_freshness(tmp_path):
    backend = LocalBackend(str(tmp_path))
    assert not backend.lease_held(KEY_A)
    lease = backend.lease(KEY_A)
    assert lease.try_acquire()
    assert backend.lease_held(KEY_A)
    os.utime(backend.lease_path_for(KEY_A), (1_000_000, 1_000_000))
    assert not backend.lease_held(KEY_A)  # stale = effectively unheld
    lease.release()


# -------------------------------------------------------------- HTTP backend

def test_http_backend_rejects_malformed_keys():
    backend = HTTPBackend("http://127.0.0.1:1")
    with pytest.raises(BackendError):
        backend.url_for("../../etc/passwd")
    with pytest.raises(BackendError):
        backend.url_for("AA" * 16)  # uppercase is not a content key


def test_http_backend_backs_off_after_transport_failure():
    backend = HTTPBackend("http://127.0.0.1:1", timeout_s=0.2,
                          backoff_s=3600.0)
    assert backend.get(KEY_A) is None  # connection refused -> miss
    assert backend._down_until > 0
    # inside the backoff window nothing even attempts the network
    assert backend.get(KEY_B) is None
    assert backend.stat(KEY_B) is None


def test_http_backend_404_is_a_miss_without_backoff(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        assert backend.get(KEY_A) is None
        assert backend._down_until == 0.0  # reachable server, no backoff
        assert backend.stat(KEY_A) is None


def test_http_backend_round_trip_through_a_live_server(tmp_path):
    entry = json.dumps({"key": KEY_A, "values": {}}).encode()
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        backend.put(KEY_A, entry)
        assert backend.get(KEY_A) == entry
        assert backend.stat(KEY_A).size == len(entry)
        assert list(backend.iter_keys()) == [KEY_A]
        backend.delete(KEY_A)
        assert backend.get(KEY_A) is None
        backend.delete(KEY_A)  # deleting an absent entry is a no-op (404)


def test_server_rejects_entries_whose_embedded_key_mismatches(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        bad = json.dumps({"key": KEY_B, "values": {}}).encode()
        with pytest.raises(BackendError):
            backend.put(KEY_A, bad)
        with pytest.raises(BackendError):
            backend.put(KEY_A, b"not json at all")
        assert list(backend.iter_keys()) == []


def test_read_only_server_refuses_writes_but_serves_reads(tmp_path):
    local = LocalBackend(str(tmp_path))
    entry = json.dumps({"key": KEY_A, "values": {}}).encode()
    local.put(KEY_A, entry)
    with StoreServer(str(tmp_path), port=0, read_only=True) as server:
        backend = HTTPBackend(server.url)
        assert backend.get(KEY_A) == entry
        with pytest.raises(BackendError):
            backend.put(KEY_B, json.dumps({"key": KEY_B}).encode())
        with pytest.raises(BackendError):
            backend.delete(KEY_A)
        assert backend.get(KEY_A) == entry


def test_push_pull_raise_loudly_when_unreachable():
    backend = HTTPBackend("http://127.0.0.1:1", timeout_s=0.2)
    with pytest.raises(BackendError):
        list(backend.iter_keys())
    with pytest.raises(BackendError):
        backend.put(KEY_A, b"{}")


# ------------------------------------------------- down-window reset (regr.)

@pytest.mark.parametrize("op", ["put", "delete", "fetch", "iter_keys"])
def test_any_successful_op_disarms_the_down_window(tmp_path, op):
    """Regression: put/delete/fetch/iter_keys never called ``_mark_up``,
    so an explicit transfer succeeding *inside* a down window left
    ``get``/``stat`` blind for the window's remainder — up to the full
    backoff — against a provably live server."""
    entry = json.dumps({"key": KEY_A}).encode()
    with StoreServer(str(tmp_path), port=0) as server:
        LocalBackend(str(tmp_path)).put(KEY_A, entry)
        backend = HTTPBackend("http://127.0.0.1:1", timeout_s=0.2,
                              backoff_s=3600.0)
        assert backend.get(KEY_B) is None  # transport failure...
        assert backend._down_until > 0    # ...arms a long down window
        backend.base_url = server.url     # the remote heals mid-window
        if op == "put":
            backend.put(KEY_B, json.dumps({"key": KEY_B}).encode())
        elif op == "delete":
            backend.delete(KEY_B)  # 404 no-op: still a live remote
        elif op == "fetch":
            assert backend.fetch(KEY_A) == entry
        else:
            assert KEY_A in list(backend.iter_keys())
        assert backend._down_until == 0.0  # window disarmed, streak reset
        assert backend.get(KEY_A) == entry  # reads recover immediately


# --------------------------------------------------- honest stat (regr.)

def _head_only_server(content_length):
    """A server whose HEAD answers carry a broken Content-Length."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _Handler(BaseHTTPRequestHandler):
        def log_message(self, format, *args):  # noqa: A002
            """Keep the test output clean."""

        def do_HEAD(self):
            """Answer 200 with the configured (broken) length header."""
            self.send_response(200)
            if content_length is not None:
                self.send_header("Content-Length", content_length)
            self.end_headers()

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    return httpd, thread, f"http://127.0.0.1:{httpd.server_address[1]}"


@pytest.mark.parametrize("content_length", [None, "not-a-number", "-5"])
def test_stat_without_a_parseable_length_is_a_miss(content_length):
    """Regression: ``int(headers.get("Content-Length") or 0)`` fabricated
    ``EntryStat(size=0, mtime=0.0)`` for any answer missing the header,
    silently corrupting remote byte accounting and LRU ordering."""
    httpd, thread, url = _head_only_server(content_length)
    try:
        backend = HTTPBackend(url)
        assert backend.stat(KEY_A) is None
        assert backend._down_until == 0.0  # reachable: a miss, no backoff
    finally:
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()


def test_stat_never_fabricates_an_mtime(tmp_path):
    """HTTP reports size but not mtime; the old hard-coded ``mtime=0.0``
    made every remote entry look infinitely old to LRU comparisons."""
    entry = json.dumps({"key": KEY_A}).encode()
    local = LocalBackend(str(tmp_path))
    local.put(KEY_A, entry)
    assert local.stat(KEY_A).mtime > 0  # the local tier knows the truth
    with StoreServer(str(tmp_path), port=0) as server:
        stat = HTTPBackend(server.url).stat(KEY_A)
    assert stat.size == len(entry)
    assert stat.mtime is None  # absent, not zero


# ------------------------------------------- honest server writes (regr.)

def _server_address(server):
    parts = urllib.parse.urlsplit(server.url)
    return parts.hostname, parts.port


def test_put_with_a_short_body_is_rejected_not_truncated(tmp_path):
    """Regression: ``do_PUT`` accepted whatever ``rfile.read`` returned —
    a client dying mid-upload landed a truncated (corrupt) entry that
    every reader then had to reject."""
    body = json.dumps({"key": KEY_A, "values": {"x": 1.0}}).encode()
    with StoreServer(str(tmp_path), port=0) as server:
        host, port = _server_address(server)
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall((f"PUT /objects/{KEY_A}.json HTTP/1.1\r\n"
                          f"Host: {host}\r\n"
                          f"Content-Length: {len(body) + 500}\r\n"
                          f"\r\n").encode() + body)
            sock.shutdown(socket.SHUT_WR)  # the client dies mid-upload
            status = sock.recv(4096).split(b"\r\n", 1)[0]
        assert b"400" in status
        assert LocalBackend(str(tmp_path)).get(KEY_A) is None  # no entry


@pytest.mark.parametrize("length,expected", [
    ("-7", 400),                          # negative: nonsense framing
    ("banana", 400),                      # unparseable: nonsense framing
    (str(MAX_BODY_BYTES + 1), 413),       # absurd: refused before reading
])
def test_put_with_a_bogus_content_length_is_refused(tmp_path, length,
                                                    expected):
    with StoreServer(str(tmp_path), port=0) as server:
        host, port = _server_address(server)
        conn = http.client.HTTPConnection(host, port, timeout=5.0)
        try:
            conn.putrequest("PUT", f"/objects/{KEY_A}.json",
                            skip_accept_encoding=True)
            conn.putheader("Content-Length", length)
            conn.endheaders()
            assert conn.getresponse().status == expected
        finally:
            conn.close()
        assert LocalBackend(str(tmp_path)).get(KEY_A) is None


def test_concurrent_deletes_report_exactly_one_success(tmp_path):
    """Regression: ``do_DELETE`` statted then unlinked — two racing
    deletes could both see the entry and both claim a 200.  The unlink
    itself is now the existence check, so exactly one wins."""
    LocalBackend(str(tmp_path)).put(KEY_A, json.dumps({"key": KEY_A})
                                    .encode())
    with StoreServer(str(tmp_path), port=0) as server:
        host, port = _server_address(server)
        barrier = threading.Barrier(2)
        statuses = []

        def _delete():
            conn = http.client.HTTPConnection(host, port, timeout=5.0)
            try:
                barrier.wait(timeout=5.0)
                conn.request("DELETE", f"/objects/{KEY_A}.json")
                statuses.append(conn.getresponse().status)
            finally:
                conn.close()

        threads = [threading.Thread(target=_delete) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
    assert sorted(statuses) == [200, 404]
    assert LocalBackend(str(tmp_path)).get(KEY_A) is None


def test_local_delete_entry_reports_whether_it_removed(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b'{"key": "x"}')
    assert backend.delete_entry(KEY_A) is True
    assert backend.delete_entry(KEY_A) is False  # already gone: honest
    assert backend.get(KEY_A) is None
