"""The storage-tier seam: backend protocol, local layout, leases.

``docs/store-backends.md`` is the written contract; these tests are its
drift check at the primitive level — the five backend operations, the
atomicity each backend must provide, and the lease lifecycle (acquire,
steal-after-stale, release) that the exact-GC and cross-sweep-dedupe
guarantees are built on.
"""

import json
import os
import threading

import pytest

from repro.scenarios import (
    BackendError,
    EntryStat,
    FileLease,
    HTTPBackend,
    LocalBackend,
    StoreBackend,
    StoreServer,
)

KEY_A = "aa" * 16
KEY_B = "bb" * 16


# ----------------------------------------------------------------- protocol

def test_both_shipped_backends_satisfy_the_protocol(tmp_path):
    # StoreBackend is runtime-checkable: the docs' claim that any tier
    # with these five operations can back a store is checkable in code
    assert isinstance(LocalBackend(str(tmp_path)), StoreBackend)
    assert isinstance(HTTPBackend("http://127.0.0.1:1"), StoreBackend)


# ------------------------------------------------------------ local backend

def test_local_backend_round_trip(tmp_path):
    backend = LocalBackend(str(tmp_path))
    assert backend.get(KEY_A) is None
    assert backend.stat(KEY_A) is None
    backend.put(KEY_A, b'{"key": "x"}')
    assert backend.get(KEY_A) == b'{"key": "x"}'
    stat = backend.stat(KEY_A)
    assert isinstance(stat, EntryStat) and stat.size == len(b'{"key": "x"}')
    backend.put(KEY_B, b"other")
    assert list(backend.iter_keys()) == sorted([KEY_A, KEY_B])
    backend.delete(KEY_A)
    assert backend.get(KEY_A) is None
    assert list(backend.iter_keys()) == [KEY_B]
    backend.delete(KEY_A)  # idempotent


def test_local_backend_put_leaves_no_temp_files(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b"data")
    leftovers = [name for _, _, names in os.walk(backend.objects_dir)
                 for name in names if name.endswith(".tmp")]
    assert leftovers == []


def test_local_backend_total_bytes_ignores_lease_files(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b"data")
    backend.touch_served(KEY_A)
    before = backend.total_bytes()
    lease = backend.lease(KEY_A)
    assert lease.try_acquire()
    # byte budgets are contracts about results, not coordination state
    assert backend.total_bytes() == before
    lease.release()


def test_abandoned_steal_files_are_cleaned_and_never_counted(tmp_path):
    backend = LocalBackend(str(tmp_path))
    backend.put(KEY_A, b"data")
    before = backend.total_bytes()
    shard = os.path.dirname(backend.path_for(KEY_A))
    leaked = os.path.join(shard, "leaked-crash.steal")
    with open(leaked, "w") as f:
        f.write("some dead stealer's token")
    assert backend.total_bytes() == before  # coordination debris
    os.utime(leaked, (1_000_000, 1_000_000))
    backend.remove_abandoned(grace_s=3600.0)
    assert not os.path.exists(leaked)


# ------------------------------------------------------------------- leases

def test_lease_excludes_a_second_acquirer(tmp_path):
    path = str(tmp_path / "x.lease")
    first, second = FileLease(path), FileLease(path)
    assert first.try_acquire()
    assert not second.try_acquire()
    assert second.held_by_other()
    first.release()
    assert not os.path.exists(path)
    assert second.try_acquire()
    second.release()


def test_stale_lease_is_stolen(tmp_path):
    path = str(tmp_path / "x.lease")
    dead = FileLease(path, steal_after=0.5)
    assert dead.try_acquire()
    # the holder "crashed" long ago: backdate the lease mtime
    os.utime(path, (1_000_000, 1_000_000))
    thief = FileLease(path, steal_after=0.5)
    assert thief.try_acquire()
    assert thief.owned
    # the original owner's release must not remove the thief's lease
    dead.release()
    assert os.path.exists(path)
    thief.release()
    assert not os.path.exists(path)


def test_refresh_keeps_a_lease_from_being_stolen(tmp_path):
    path = str(tmp_path / "x.lease")
    holder = FileLease(path, steal_after=3600.0)
    assert holder.try_acquire()
    os.utime(path, (1_000_000, 1_000_000))  # would be stealable...
    holder.refresh()                        # ...but the holder is alive
    thief = FileLease(path, steal_after=3600.0)
    assert not thief.try_acquire()
    holder.release()


def test_fresh_lease_is_not_stolen(tmp_path):
    path = str(tmp_path / "x.lease")
    holder = FileLease(path, steal_after=3600.0)
    assert holder.try_acquire()
    thief = FileLease(path, steal_after=3600.0)
    assert not thief.acquire(timeout=0.1)
    holder.release()


def test_blocking_acquire_waits_for_release(tmp_path):
    path = str(tmp_path / "x.lease")
    holder = FileLease(path)
    assert holder.try_acquire()
    release_soon = threading.Timer(0.15, holder.release)
    release_soon.start()
    waiter = FileLease(path)
    try:
        assert waiter.acquire(timeout=5.0)
    finally:
        release_soon.cancel()
        waiter.release()


def test_lease_context_manager_releases(tmp_path):
    path = str(tmp_path / "x.lease")
    lease = FileLease(path)
    assert lease.try_acquire()
    with lease:
        assert os.path.exists(path)
    assert not os.path.exists(path)


def test_lease_held_tracks_freshness(tmp_path):
    backend = LocalBackend(str(tmp_path))
    assert not backend.lease_held(KEY_A)
    lease = backend.lease(KEY_A)
    assert lease.try_acquire()
    assert backend.lease_held(KEY_A)
    os.utime(backend.lease_path_for(KEY_A), (1_000_000, 1_000_000))
    assert not backend.lease_held(KEY_A)  # stale = effectively unheld
    lease.release()


# -------------------------------------------------------------- HTTP backend

def test_http_backend_rejects_malformed_keys():
    backend = HTTPBackend("http://127.0.0.1:1")
    with pytest.raises(BackendError):
        backend.url_for("../../etc/passwd")
    with pytest.raises(BackendError):
        backend.url_for("AA" * 16)  # uppercase is not a content key


def test_http_backend_backs_off_after_transport_failure():
    backend = HTTPBackend("http://127.0.0.1:1", timeout_s=0.2,
                          backoff_s=3600.0)
    assert backend.get(KEY_A) is None  # connection refused -> miss
    assert backend._down_until > 0
    # inside the backoff window nothing even attempts the network
    assert backend.get(KEY_B) is None
    assert backend.stat(KEY_B) is None


def test_http_backend_404_is_a_miss_without_backoff(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        assert backend.get(KEY_A) is None
        assert backend._down_until == 0.0  # reachable server, no backoff
        assert backend.stat(KEY_A) is None


def test_http_backend_round_trip_through_a_live_server(tmp_path):
    entry = json.dumps({"key": KEY_A, "values": {}}).encode()
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        backend.put(KEY_A, entry)
        assert backend.get(KEY_A) == entry
        assert backend.stat(KEY_A).size == len(entry)
        assert list(backend.iter_keys()) == [KEY_A]
        backend.delete(KEY_A)
        assert backend.get(KEY_A) is None
        backend.delete(KEY_A)  # deleting an absent entry is a no-op (404)


def test_server_rejects_entries_whose_embedded_key_mismatches(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        bad = json.dumps({"key": KEY_B, "values": {}}).encode()
        with pytest.raises(BackendError):
            backend.put(KEY_A, bad)
        with pytest.raises(BackendError):
            backend.put(KEY_A, b"not json at all")
        assert list(backend.iter_keys()) == []


def test_read_only_server_refuses_writes_but_serves_reads(tmp_path):
    local = LocalBackend(str(tmp_path))
    entry = json.dumps({"key": KEY_A, "values": {}}).encode()
    local.put(KEY_A, entry)
    with StoreServer(str(tmp_path), port=0, read_only=True) as server:
        backend = HTTPBackend(server.url)
        assert backend.get(KEY_A) == entry
        with pytest.raises(BackendError):
            backend.put(KEY_B, json.dumps({"key": KEY_B}).encode())
        with pytest.raises(BackendError):
            backend.delete(KEY_A)
        assert backend.get(KEY_A) == entry


def test_push_pull_raise_loudly_when_unreachable():
    backend = HTTPBackend("http://127.0.0.1:1", timeout_s=0.2)
    with pytest.raises(BackendError):
        list(backend.iter_keys())
    with pytest.raises(BackendError):
        backend.put(KEY_A, b"{}")
