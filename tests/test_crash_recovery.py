"""Worker crashes must cost retries, never rows and never stuck leases.

The batch executor's crash-recovery contract, pinned end to end with the
deterministic chaos harness of :mod:`repro.scenarios.faults`:

* a worker hard-killed mid-chunk (the OOM killer in miniature) breaks
  the pool; the parent keeps every recorded row, rebuilds, requeues the
  unfinished cells as single-cell chunks, and the sweep completes with
  rows bit-identical to serial;
* a cell that keeps killing workers exhausts its bounded retry budget
  and is quarantined — re-run serially in the parent, where the kill
  hook never fires — so even a 100%-lethal cell cannot wedge a sweep;
* a deterministically poisoned cell travels requeue → quarantine →
  ``BatchReport.failures`` with its real error, instead of aborting the
  other cells;
* every path — success, crash, failure — leaves zero ``.lease`` files
  and no claim-refresher thread behind, and a lease orphaned by a
  SIGKILLed *process* is stolen after the stale window so a second
  sweep finishes the grid.

``docs/robustness.md`` is the prose version of this contract.
"""

import glob
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from helpers import make_tiny_model
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.scenarios import (
    KILL_PLAN_ENV,
    KillPlan,
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    SweepStore,
    run_batch,
)

MODEL = "tinycrash"
POISON = "poisoncrash"


def build_tinycrash(batch_size=None):
    """Module-level builder: spawn workers re-import it by name."""
    return make_tiny_model(batch=batch_size or 4)


def build_poisoncrash(batch_size=None):
    """A deterministically failing workload (fails in workers AND parent)."""
    raise ValueError("this workload is poisoned")


@pytest.fixture(scope="module", autouse=True)
def register_models():
    # unlike the other store test modules, this one sorts *before*
    # test_models.py — unregister on teardown so its exact-zoo assertion
    # never sees these workloads
    from repro.models import registry as model_registry
    for name, builder in ((MODEL, build_tinycrash),
                          (POISON, build_poisoncrash)):
        try:
            register_model(name, builder)
        except ConfigError:
            pass
    yield
    for name in (MODEL, POISON):
        model_registry._BUILDERS.pop(name, None)
        model_registry._RUNTIME_NAMES.discard(name)


@pytest.fixture(scope="module")
def scenarios():
    grid = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={"cluster.bandwidth_gbps": [10.0, 25.0],
              "cluster.machines": [2, 4]},
    )
    return grid.expand() + [Scenario(model=MODEL)]


@pytest.fixture(scope="module")
def serial_rows(scenarios):
    return [o.as_row()
            for o in ScenarioRunner().run_grid(scenarios, processes=1)]


def rows_from(report):
    runner = ScenarioRunner()
    return [runner.detached_outcome(c.scenario, c.baseline_us,
                                    c.predicted_us, cached=c.cached).as_row()
            for c in report.cells]


def assert_no_leaked_coordination(store_root):
    """No lease file and no claim-refresher thread may outlive a sweep."""
    assert glob.glob(os.path.join(store_root, "**", "*.lease"),
                     recursive=True) == []
    assert not [t for t in threading.enumerate()
                if t.name == "repro-claim-refresher" and t.is_alive()]


# --------------------------------------------------------------- crash paths

def test_sweep_survives_a_hard_killed_worker(scenarios, serial_rows,
                                             tmp_path, monkeypatch):
    """One SIGKILLed worker costs a pool rebuild, not the sweep."""
    plan = KillPlan(cell=0, times=1, claim_dir=str(tmp_path / "claims"))
    monkeypatch.setenv(KILL_PLAN_ENV, plan.to_json())
    store = SweepStore(str(tmp_path / "store"))
    report = run_batch(scenarios, store=store, jobs=2)
    assert rows_from(report) == serial_rows
    assert report.failed == 0 and report.failures == []
    assert report.pool_rebuilds >= 1   # the kill actually landed
    assert report.retried >= 1
    assert report.computed == len(scenarios)
    assert_no_leaked_coordination(store.root)
    # the kill budget was spent exactly once
    assert len(os.listdir(plan.claim_dir)) == 1


def test_lethal_cell_is_quarantined_and_still_completes(scenarios,
                                                        serial_rows,
                                                        tmp_path,
                                                        monkeypatch):
    """A cell that kills every worker it touches finishes in the parent."""
    plan = KillPlan(cell=0, times=99, claim_dir=str(tmp_path / "claims"))
    monkeypatch.setenv(KILL_PLAN_ENV, plan.to_json())
    store = SweepStore(str(tmp_path / "store"))
    report = run_batch(scenarios, store=store, jobs=2, max_cell_retries=1)
    assert rows_from(report) == serial_rows
    assert report.failed == 0
    assert report.quarantined >= 1     # the budget ran out, the parent ran it
    assert report.pool_rebuilds >= 2
    assert_no_leaked_coordination(store.root)


def test_poisoned_cell_is_reported_not_fatal(scenarios, tmp_path):
    """A cell that raises everywhere lands in failures; the rest complete."""
    poisoned = list(scenarios) + [Scenario(model=POISON)]
    store = SweepStore(str(tmp_path / "store"))
    report = run_batch(poisoned, store=store, jobs=2, max_cell_retries=1)
    assert report.failed == 1
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.index == len(poisoned) - 1
    assert "poisoned" in failure.error
    assert len(report.cells) == len(scenarios)  # every healthy cell has a row
    assert report.quarantined >= 1  # it went through the parent re-run first
    assert_no_leaked_coordination(store.root)


def test_run_grid_raises_listing_failed_cells(scenarios, tmp_path):
    """The runner surface keeps serial semantics: failures raise, loudly."""
    poisoned = list(scenarios) + [Scenario(model=POISON)]
    with pytest.raises(ConfigError, match="poisoned"):
        ScenarioRunner().run_grid(poisoned, parallel=2,
                                  store=SweepStore(str(tmp_path / "store")),
                                  max_cell_retries=0)


def test_retry_budget_rejects_negative_values(scenarios):
    with pytest.raises(ConfigError):
        run_batch(scenarios, max_cell_retries=-1)


# ------------------------------------------------------------ orphaned leases

def test_orphaned_lease_of_a_sigkilled_process_is_stolen(scenarios,
                                                         serial_rows,
                                                         tmp_path):
    """The satellite scenario: a process dies holding a compute lease.

    A subprocess acquires the first cell's compute lease and is SIGKILLed
    mid-"computation" — no release, no cleanup.  Once the lease passes
    the stale window (backdated here instead of waiting two minutes), a
    second sweep steals it and finishes the whole grid bit-identically.
    """
    store = SweepStore(str(tmp_path / "store"))
    key = store.key(scenarios[0])
    code = (
        "import sys, time\n"
        "from repro.scenarios import SweepStore\n"
        "store = SweepStore(sys.argv[1])\n"
        "lease = store.lease(sys.argv[2])\n"
        "assert lease.try_acquire()\n"
        "print('held', flush=True)\n"
        "time.sleep(120)\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    holder = subprocess.Popen([sys.executable, "-c", code, store.root, key],
                              env=env, cwd="/root/repo",
                              stdout=subprocess.PIPE)
    try:
        assert holder.stdout.readline().strip() == b"held"
        holder.kill()  # SIGKILL: the lease file is orphaned on disk
        holder.wait(timeout=10.0)
        assert holder.returncode == -signal.SIGKILL
        lease_path = store.lease(key).path
        assert os.path.exists(lease_path)
        # age the orphan past the stale window instead of sleeping 120s
        stale = time.time() - 4000.0
        os.utime(lease_path, (stale, stale))

        report = run_batch(scenarios, store=store, jobs=2)
        assert rows_from(report) == serial_rows
        assert report.computed == len(scenarios)  # the orphan did not block
        assert_no_leaked_coordination(store.root)
    finally:
        if holder.poll() is None:
            holder.kill()
        holder.stdout.close()


def test_failed_cell_releases_its_lease_promptly(scenarios, tmp_path):
    """The crash-path lease satellite: failure frees the key immediately.

    After a poisoned cell is reported failed, its compute lease must be
    gone — a concurrent sweep can claim the key at once instead of
    waiting out the steal window.
    """
    store = SweepStore(str(tmp_path / "store"))
    poison = Scenario(model=POISON)
    report = run_batch([poison], store=store, jobs=2, max_cell_retries=0)
    assert report.failed == 1
    lease = store.lease(store.key(poison))
    assert lease.try_acquire()  # no stale-steal wait needed
    lease.release()
