"""Delta sync must scale push/pull without ever skipping an entry.

``GET /keys?since=<clock>`` lists only the keys stamped at-or-after the
caller's sync clock (inclusive — ties are over-reported, never skipped),
and conditional entry GETs (``If-None-Match`` with the content-checksum
ETag) short-circuit identical bytes.  Together with the per-remote sync
journal under ``<root>/sync/`` this makes re-syncing an already-synced
hub transfer *zero entry bodies* — the acceptance criterion, verified
here by the :class:`HTTPBackend` journal counters, not by timing.  The
failure half matters just as much: a sync that dies mid-flight must not
advance the journal clock past entries it never moved, and a pre-delta
server must degrade to the full listing, not to an error.  The CI
``cross-host`` job runs this file.
"""

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.__main__ import main
from repro.scenarios import (
    NOT_MODIFIED,
    BackendError,
    HTTPBackend,
    LocalBackend,
    Scenario,
    StoreServer,
    SweepStore,
    entry_etag,
    no_retry,
)
from repro.scenarios.store import RESULT_SCHEMA_VERSION, _entry_checksum

KEYS = ["ab" * 16, "cd" * 16, "ef" * 16]


def entry_bytes_for(key):
    return json.dumps({"key": key}).encode()


def stamped_backend(root, mtimes):
    """A LocalBackend holding KEYS with pinned entry mtimes."""
    backend = LocalBackend(str(root))
    for key, mtime in zip(KEYS, mtimes):
        backend.put(key, entry_bytes_for(key))
        os.utime(backend.path_for(key), (mtime, mtime))
    return backend


def seeded_publisher(root, n=3):
    """A SweepStore holding ``n`` live single-value entries."""
    store = SweepStore(str(root))
    for i in range(n):
        store.put(Scenario(model="resnet50", batch_size=8 + i),
                  {"baseline_us": float(i), "predicted_us": float(i)})
    return store


# ------------------------------------------------------------ delta listing

def test_keys_since_zero_lists_everything_and_returns_the_clock(tmp_path):
    stamped_backend(tmp_path, [1000.0, 2000.0, 3000.0])
    with StoreServer(str(tmp_path), port=0) as server:
        listing = HTTPBackend(server.url).iter_keys_since(0.0)
    assert listing is not None
    keys, clock = listing
    assert sorted(keys) == sorted(KEYS)
    assert clock == 3000.0  # the max entry mtime = the next since


def test_keys_since_boundary_is_inclusive(tmp_path):
    """A key stamped exactly at the clock re-lists — over-reporting a tie
    is harmless (the pull skips it as live), skipping it loses data."""
    stamped_backend(tmp_path, [1000.0, 2000.0, 3000.0])
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        keys, clock = backend.iter_keys_since(2000.0)
        assert sorted(keys) == sorted(KEYS[1:])  # 2000.0 itself included
        assert clock == 3000.0
        later, clock2 = backend.iter_keys_since(3000.5)
        assert later == []
        assert clock2 == 3000.5  # the clock never regresses below since


def test_conditional_fetch_returns_not_modified_on_etag_match(tmp_path):
    backend_dir = LocalBackend(str(tmp_path))
    backend_dir.put(KEYS[0], entry_bytes_for(KEYS[0]))
    with StoreServer(str(tmp_path), port=0) as server:
        client = HTTPBackend(server.url)
        data = client.fetch(KEYS[0])
        assert data == entry_bytes_for(KEYS[0])
        assert client.fetch(KEYS[0],
                            etag=entry_etag(data)) is NOT_MODIFIED
        assert client.journal["fetch_not_modified"] == 1
        # a different etag still moves the body
        assert client.fetch(KEYS[0], etag="0" * 16) == data


# --------------------------------------------------------- zero-body resync

def test_resync_of_a_synced_hub_moves_zero_entry_bodies(tmp_path):
    """The acceptance criterion, verified by wire counters per phase."""
    publisher = seeded_publisher(tmp_path / "publisher")
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        first_push = HTTPBackend(server.url)
        assert publisher.push(first_push).transferred == 3
        assert first_push.journal["put"] == 3

        second_push = HTTPBackend(server.url)  # fresh wire counters
        report = publisher.push(second_push)
        assert report.transferred == 0
        assert second_push.journal["put"] == 0
        assert second_push.journal["entry_bodies"] == 0

        mirror = SweepStore(str(tmp_path / "mirror"))
        first_pull = HTTPBackend(server.url)
        assert mirror.pull(first_pull).transferred == 3
        assert first_pull.journal["entry_bodies"] == 3

        second_pull = HTTPBackend(server.url)
        again = mirror.pull(second_pull)
        assert again.transferred == 0
        # boundary ties may re-list, but live local copies never fetch
        assert second_pull.journal["fetch"] == 0
        assert second_pull.journal["entry_bodies"] == 0


def test_pull_short_circuits_stale_identical_bytes_without_a_body(tmp_path):
    """A non-live local copy whose bytes match the hub's goes out as a
    conditional GET: the 304 costs headers, not a body — the remote copy
    would fail the exact verification that demoted ours."""
    client_root = tmp_path / "mirror"
    probe = SweepStore(str(client_root))
    scenario = Scenario(model="resnet50")
    key = probe.key(scenario)
    payload = {
        "format": RESULT_SCHEMA_VERSION,
        "key": key,
        "kind": "predict",
        "salt": "v1:another-generation-entirely",
        "scenario": scenario.to_dict(),
        "values": {"baseline_us": 1.0, "predicted_us": 1.0},
    }
    payload["checksum"] = _entry_checksum(payload)
    body = json.dumps(payload).encode()
    LocalBackend(str(client_root)).put(key, body)   # the stale local copy
    LocalBackend(str(tmp_path / "hub")).put(key, body)  # same bytes remote

    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        wire = HTTPBackend(server.url)
        report = SweepStore(str(client_root)).pull(wire)
    assert report.rejected == 1
    assert report.transferred == 0
    assert wire.journal["fetch_not_modified"] == 1
    assert wire.journal["entry_bodies"] == 0


def test_push_since_zero_repairs_a_hub_behind_the_journals_back(tmp_path):
    """--since 0 drops the journal's memory and relists the hub in full:
    the repair path when hub entries vanished after a successful sync."""
    publisher = seeded_publisher(tmp_path / "publisher")
    hub = tmp_path / "hub"
    with StoreServer(str(hub), port=0) as server:
        assert publisher.push(server.url).transferred == 3
        lost = sorted(LocalBackend(str(hub)).iter_keys())[0]
        assert LocalBackend(str(hub)).delete_entry(lost)
        # the journal still remembers all three: a plain push moves nothing
        assert publisher.push(server.url).transferred == 0
        # the repair path relists and restores exactly the lost entry
        repair = publisher.push(server.url, since=0.0)
        assert repair.transferred == 1
        assert sorted(LocalBackend(str(hub)).iter_keys()) \
            == sorted(publisher.keys())


# ------------------------------------------------------------- failure half

class _DeltaThenDyingHandler(BaseHTTPRequestHandler):
    """Answers /keys?since= like a delta server, 500s every entry GET."""

    keys = []

    def log_message(self, format, *args):  # noqa: A002
        """Keep the test output clean."""

    def do_GET(self):
        """Serve the delta listing; die on everything else."""
        if self.path.startswith("/keys"):
            body = json.dumps({"keys": self.keys, "clock": 777.0}).encode()
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(500, "the server died mid-sync")


def _serve(handler_cls):
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), handler_cls)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    return httpd, thread, url


def test_mid_death_never_advances_the_sync_journal(tmp_path):
    """A pull that dies after the listing must not journal clock 777 —
    the next sync against a healed server still sees those keys."""
    _DeltaThenDyingHandler.keys = [KEYS[0]]
    httpd, thread, url = _serve(_DeltaThenDyingHandler)
    try:
        mirror = SweepStore(str(tmp_path / "mirror"))
        with pytest.raises(BackendError):
            mirror.pull(url, retry=no_retry())
        sync_dir = os.path.join(mirror.root, "sync")
        assert not os.path.isdir(sync_dir) or not os.listdir(sync_dir)
    finally:
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()


class _LegacyHandler(BaseHTTPRequestHandler):
    """A pre-delta server: exact-path /keys only, no ?since=, no ETag."""

    backend_root = ""

    def log_message(self, format, *args):  # noqa: A002
        """Keep the test output clean."""

    def _reply(self, code, body):
        self.send_response(code)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        """The old servers' exact-match routing: ?since= is a 404."""
        backend = LocalBackend(self.backend_root)
        if self.path == "/keys":
            self._reply(200, json.dumps(sorted(backend.iter_keys()))
                        .encode())
            return
        key = self.path.rsplit("/", 1)[-1].removesuffix(".json")
        data = backend.get(key) if len(key) == 32 else None
        if data is None:
            self._reply(404, b"{}")
        else:
            self._reply(200, data)


def test_pull_falls_back_to_full_listing_on_a_pre_delta_server(tmp_path):
    publisher = seeded_publisher(tmp_path / "hub-root")
    _LegacyHandler.backend_root = publisher.root
    httpd, thread, url = _serve(_LegacyHandler)
    try:
        mirror = SweepStore(str(tmp_path / "mirror"))
        wire = HTTPBackend(url)
        assert wire.iter_keys_since(0.0) is None  # 404 = pre-delta
        report = mirror.pull(wire, retry=no_retry())
        assert report.transferred == 3
        assert len(mirror) == 3
        # no delta journal is written for a server that cannot use one
        sync_dir = os.path.join(mirror.root, "sync")
        assert not os.path.isdir(sync_dir) or not os.listdir(sync_dir)
    finally:
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()


# --------------------------------------------------------------------- CLI

def test_cli_push_and_pull_accept_since(tmp_path, capsys):
    publisher = seeded_publisher(tmp_path / "publisher")
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        assert main(["store", "push", publisher.root,
                     "--remote", server.url]) == 0
        assert json.loads(capsys.readouterr().out)["transferred"] == 3
        # --since 0 relists in full; everything is already there
        assert main(["store", "push", publisher.root,
                     "--remote", server.url, "--since", "0"]) == 0
        assert json.loads(capsys.readouterr().out)["skipped"] == 3
        assert main(["store", "pull", str(tmp_path / "mirror"),
                     "--remote", server.url, "--since", "0"]) == 0
        assert json.loads(capsys.readouterr().out)["transferred"] == 3
