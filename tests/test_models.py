"""Tests for the model zoo: parameter counts, structure, lowering."""

import pytest

from repro.common.errors import ConfigError
from repro.models.base import LayerSpec, ModelSpec, ParamTensor, Phase
from repro.models.registry import available_models, build_model


class TestParamTensor:
    def test_grad_bytes(self):
        assert ParamTensor("w", 100).grad_bytes == 400

    def test_rejects_empty_tensor(self):
        with pytest.raises(ConfigError):
            ParamTensor("w", 0)


class TestModelSpecValidation:
    def test_duplicate_layer_names_rejected(self):
        layer = LayerSpec(name="dup", kind="relu")
        with pytest.raises(ConfigError):
            ModelSpec(name="m", layers=[layer, LayerSpec(name="dup", kind="relu")],
                      batch_size=1, input_sample_bytes=4)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ConfigError):
            ModelSpec(name="m", layers=[], batch_size=1, input_sample_bytes=4,
                      default_optimizer="adagrad")

    def test_layer_lookup(self):
        layer = LayerSpec(name="a", kind="relu")
        model = ModelSpec(name="m", layers=[layer], batch_size=1,
                          input_sample_bytes=4)
        assert model.layer("a") is layer
        with pytest.raises(ConfigError):
            model.layer("b")

    def test_backward_order_is_reversed(self):
        layers = [LayerSpec(name=f"l{i}", kind="relu") for i in range(3)]
        model = ModelSpec(name="m", layers=layers, batch_size=1,
                          input_sample_bytes=4)
        assert [l.name for l in model.backward_order()] == ["l2", "l1", "l0"]


class TestRegistry:
    def test_all_models_listed(self):
        assert set(available_models()) == {
            "resnet50", "vgg19", "densenet121", "gnmt", "bert_base",
            "bert_large",
        }

    def test_aliases(self):
        assert build_model("Seq2Seq").name == "gnmt"
        assert build_model("BERT-Large").name == "bert_large"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            build_model("alexnet")

    def test_batch_size_override(self):
        assert build_model("resnet50", batch_size=8).batch_size == 8


class TestParameterCounts:
    """Parameter totals should match the published architectures."""

    def test_resnet50(self):
        assert build_model("resnet50").param_numel / 1e6 == pytest.approx(
            25.5, abs=0.6)

    def test_vgg19(self):
        assert build_model("vgg19").param_numel / 1e6 == pytest.approx(
            143.7, abs=1.0)

    def test_densenet121(self):
        assert build_model("densenet121").param_numel / 1e6 == pytest.approx(
            8.0, abs=0.5)

    def test_bert_base(self):
        assert build_model("bert_base").param_numel / 1e6 == pytest.approx(
            109.0, abs=3.0)

    def test_bert_large(self):
        assert build_model("bert_large").param_numel / 1e6 == pytest.approx(
            335.0, abs=6.0)

    def test_gnmt_order_of_magnitude(self):
        gnmt = build_model("gnmt").param_numel / 1e6
        assert 120 < gnmt < 220


class TestStructure:
    def test_resnet_conv_count(self):
        convs = build_model("resnet50").layers_of_kind("conv")
        assert len(convs) == 53  # 52 in blocks + stem

    def test_densenet_batchnorm_count(self):
        bns = build_model("densenet121").layers_of_kind("batchnorm")
        assert len(bns) == 121  # 58 units x 2 + stem + 3 transitions + final

    def test_vgg_conv_count(self):
        assert len(build_model("vgg19").layers_of_kind("conv")) == 16

    def test_bert_block_structure(self):
        bert = build_model("bert_base")
        assert len(bert.layers_of_kind("attention")) == 12
        assert len(bert.layers_of_kind("ffn")) == 12

    def test_gnmt_lstm_count(self):
        assert len(build_model("gnmt").layers_of_kind("lstm")) == 8

    def test_every_layer_has_kernels_or_params(self):
        for name in available_models():
            model = build_model(name)
            for layer in model.layers:
                assert layer.forward_kernels or layer.params, layer.name

    def test_backward_kernels_exist_where_forward_exists(self):
        for name in available_models():
            model = build_model(name)
            for layer in model.layers:
                if layer.forward_kernels:
                    assert layer.backward_kernels, layer.name


class TestAdamKernelCounts:
    """Section 6.3: ~2633 weight-update kernels for BERT_base, 5164 for
    BERT_large; our lowering lands within a few percent."""

    def test_bert_base_weight_update_kernels(self):
        model = build_model("bert_base")
        kernels = len(model.param_tensors) * 13
        assert kernels == pytest.approx(2633, rel=0.05)

    def test_bert_large_weight_update_kernels(self):
        model = build_model("bert_large")
        kernels = len(model.param_tensors) * 13
        assert kernels == pytest.approx(5164, rel=0.05)


class TestAggregates:
    def test_grad_bytes_is_4x_params(self):
        model = build_model("resnet50")
        assert model.grad_bytes == model.param_numel * 4

    def test_kernel_counts_positive(self):
        model = build_model("resnet50")
        assert model.kernel_count(Phase.FORWARD) > 100
        assert model.kernel_count(Phase.BACKWARD) > 100

    def test_weight_update_phase_not_in_kernels(self):
        model = build_model("resnet50")
        with pytest.raises(ConfigError):
            model.layers[0].kernels(Phase.WEIGHT_UPDATE)

    def test_summary_contains_name(self):
        assert "resnet50" in build_model("resnet50").summary()
