"""Tests for the Algorithm-1 simulator, including hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.core.graph import DependencyGraph
from repro.core.simulate import make_priority_scheduler, simulate
from repro.core.task import Task, TaskKind
from repro.tracing.records import comm_channel, cpu_thread, gpu_stream


def make_task(name="t", thread=None, duration=1.0, gap=0.0,
              kind=TaskKind.CPU, priority=0):
    return Task(name=name, kind=kind, thread=thread or cpu_thread(0),
                duration=duration, gap=gap, priority=priority)


class TestSequentialSemantics:
    def test_single_thread_serializes(self):
        g = DependencyGraph()
        a = g.append(make_task("a", duration=3.0))
        b = g.append(make_task("b", duration=2.0))
        res = simulate(g)
        assert res.start_us[a] == 0.0
        assert res.start_us[b] == 3.0
        assert res.makespan_us == 5.0

    def test_gap_delays_successor_but_not_makespan(self):
        g = DependencyGraph()
        a = g.append(make_task("a", duration=3.0, gap=4.0))
        b = g.append(make_task("b", duration=2.0))
        res = simulate(g)
        assert res.start_us[b] == 7.0
        assert res.makespan_us == 9.0

    def test_trailing_gap_excluded_from_makespan(self):
        g = DependencyGraph()
        g.append(make_task("a", duration=3.0, gap=100.0))
        assert simulate(g).makespan_us == 3.0

    def test_independent_threads_overlap(self):
        g = DependencyGraph()
        g.append(make_task("cpu", duration=5.0))
        g.append(make_task("gpu", thread=gpu_stream(0), duration=5.0,
                           kind=TaskKind.GPU_KERNEL))
        assert simulate(g).makespan_us == 5.0


class TestDependencies:
    def test_cross_thread_dependency_respected(self):
        g = DependencyGraph()
        launch = g.append(make_task("launch", duration=2.0))
        kernel = g.append(make_task("kernel", thread=gpu_stream(0),
                                    duration=3.0, kind=TaskKind.GPU_KERNEL))
        g.add_dependency(launch, kernel)
        res = simulate(g)
        assert res.start_us[kernel] == 2.0
        assert res.makespan_us == 5.0

    def test_sync_pattern(self):
        """CPU -> GPU -> CPU (sync) reproduces a blocking wait."""
        g = DependencyGraph()
        launch = g.append(make_task("launch", duration=1.0))
        sync = g.append(make_task("sync", duration=1.0))
        kernel = g.append(make_task("kernel", thread=gpu_stream(0),
                                    duration=10.0, kind=TaskKind.GPU_KERNEL))
        g.add_dependency(launch, kernel)
        g.add_dependency(kernel, sync)
        res = simulate(g)
        assert res.start_us[sync] == 11.0
        assert res.makespan_us == 12.0

    def test_deadlock_detected(self):
        g = DependencyGraph()
        a = g.append(make_task("a", thread=cpu_thread(0)))
        b = g.append(make_task("b", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        g.add_dependency(a, b)
        g.add_dependency(b, a)
        with pytest.raises(SimulationError):
            simulate(g)

    def test_empty_graph(self):
        assert simulate(DependencyGraph()).makespan_us == 0.0


class TestSchedulers:
    def test_bad_scheduler_rejected(self):
        g = DependencyGraph()
        g.append(make_task("a"))
        rogue = make_task("rogue")

        def bad(frontier, progress):
            return rogue

        with pytest.raises(SimulationError):
            simulate(g, bad)

    def test_priority_scheduler_orders_unordered_channel(self):
        g = DependencyGraph()
        ch = comm_channel(0)
        g.mark_unordered(ch)
        low = g.append(make_task("low", thread=ch, duration=5.0,
                                 kind=TaskKind.COMM, priority=1))
        high = g.append(make_task("high", thread=ch, duration=5.0,
                                  kind=TaskKind.COMM, priority=9))
        res = simulate(g, make_priority_scheduler(lambda t: t.is_comm))
        assert res.start_us[high] < res.start_us[low]

    def test_default_scheduler_is_fifo_on_unordered_ties(self):
        g = DependencyGraph()
        ch = comm_channel(0)
        g.mark_unordered(ch)
        first = g.append(make_task("first", thread=ch, duration=5.0,
                                   kind=TaskKind.COMM))
        second = g.append(make_task("second", thread=ch, duration=5.0,
                                    kind=TaskKind.COMM))
        res = simulate(g)
        assert res.start_us[first] < res.start_us[second]

    def test_priority_does_not_preempt_earlier_feasible(self):
        g = DependencyGraph()
        ch = comm_channel(0)
        g.mark_unordered(ch)
        gate = g.append(make_task("gate", duration=10.0))
        ready_now = g.append(make_task("now", thread=ch, duration=5.0,
                                       kind=TaskKind.COMM, priority=0))
        later = g.append(make_task("later", thread=ch, duration=5.0,
                                   kind=TaskKind.COMM, priority=100))
        g.add_dependency(gate, later)
        res = simulate(g, make_priority_scheduler(lambda t: t.is_comm))
        assert res.start_us[ready_now] == 0.0


class TestSimulationResult:
    def test_thread_busy_intervals(self):
        g = DependencyGraph()
        g.append(make_task("a", duration=2.0))
        g.append(make_task("b", duration=3.0))
        res = simulate(g)
        assert res.thread_busy[cpu_thread(0)] == [(0.0, 2.0), (2.0, 5.0)]

    def test_critical_tasks_sorted_by_duration(self):
        g = DependencyGraph()
        g.append(make_task("short", duration=1.0))
        g.append(make_task("long", duration=9.0))
        top = simulate(g).critical_tasks(top=1)
        assert top[0].name == "long"

    def test_internal_marker_cleaned_up(self):
        g = DependencyGraph()
        t = g.append(make_task("a"))
        simulate(g)
        assert "_ready_us" not in t.metadata


# --------------------------------------------------------------- properties

@st.composite
def random_graph(draw):
    """A random DAG over 2 ordered threads + cross edges (forward only)."""
    g = DependencyGraph()
    n_cpu = draw(st.integers(min_value=1, max_value=8))
    n_gpu = draw(st.integers(min_value=1, max_value=8))
    cpu_tasks = [g.append(make_task(f"c{i}", duration=draw(
        st.floats(min_value=0.0, max_value=10.0)), gap=draw(
        st.floats(min_value=0.0, max_value=3.0)))) for i in range(n_cpu)]
    gpu_tasks = [g.append(make_task(f"g{i}", thread=gpu_stream(0),
                                    kind=TaskKind.GPU_KERNEL, duration=draw(
        st.floats(min_value=0.0, max_value=10.0)))) for i in range(n_gpu)]
    # cross edges mimic launch/sync structure: launches in non-decreasing
    # CPU order (cpu[i] -> gpu[j]), syncs only to CPU tasks after every
    # launch issued so far (gpu[j] -> cpu[k]) — guarantees acyclicity
    last_launch = 0
    for j in range(n_gpu):
        i = draw(st.integers(min_value=last_launch, max_value=n_cpu - 1))
        last_launch = i
        g.add_dependency(cpu_tasks[i], gpu_tasks[j])
        if draw(st.booleans()) and last_launch + 1 < n_cpu:
            k = draw(st.integers(min_value=last_launch + 1,
                                 max_value=n_cpu - 1))
            g.add_dependency(gpu_tasks[j], cpu_tasks[k])
    return g


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_simulation_respects_all_dependencies(g):
    g.validate()
    res = simulate(g)
    for task in g.tasks():
        for child in g.successors(task):
            assert res.start_us[child] >= res.end_us(task) - 1e-9
        nxt = g.thread_successor(task)
        if nxt is not None:
            assert (res.start_us[nxt]
                    >= res.end_us(task) + task.gap - 1e-9)


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_makespan_bounds(g):
    res = simulate(g)
    # lower bound: longest single task; upper bound: sum of everything
    longest = max((t.duration for t in g.tasks()), default=0.0)
    total = sum(t.duration + t.gap for t in g.tasks())
    assert longest - 1e-9 <= res.makespan_us <= total + 1e-9


@settings(max_examples=30, deadline=None)
@given(random_graph())
def test_simulation_deterministic(g):
    r1 = simulate(g)
    r2 = simulate(g)
    assert r1.makespan_us == r2.makespan_us
