"""Tests for the package's public API surface."""

import pytest

import repro
from repro.optimizations import __all__ as optimizations_all


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_workflow_sanity(self):
        """The README quickstart works verbatim."""
        from repro import WhatIfSession
        from repro.optimizations import AutomaticMixedPrecision

        session = WhatIfSession.profile("resnet50", batch_size=2)
        pred = session.predict(AutomaticMixedPrecision())
        assert pred.speedup > 1.0

    def test_optimizations_exports(self):
        assert "AutomaticMixedPrecision" in optimizations_all
        assert "DeepGradientCompression" in optimizations_all
        import repro.optimizations as opts
        for name in optimizations_all:
            assert getattr(opts, name) is not None


class TestDocstrings:
    """A release-quality library documents every public module and class."""

    MODULES = [
        "repro", "repro.common.units", "repro.common.prng",
        "repro.common.intervals", "repro.hw.device", "repro.hw.network",
        "repro.hw.topology", "repro.kernels.kernel",
        "repro.kernels.costmodel", "repro.kernels.library",
        "repro.models.base", "repro.models.blocks", "repro.models.registry",
        "repro.framework.config", "repro.framework.engine",
        "repro.framework.bucketing", "repro.framework.groundtruth",
        "repro.framework.paramserver", "repro.tracing.records",
        "repro.tracing.trace", "repro.tracing.export", "repro.core.task",
        "repro.core.graph", "repro.core.construction", "repro.core.mapping",
        "repro.core.simulate", "repro.core.transform",
        "repro.core.breakdown", "repro.analysis.session",
        "repro.analysis.metrics", "repro.analysis.report",
        "repro.analysis.memory", "repro.analysis.layerprofile",
    ]

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_optimization_models_documented(self):
        import repro.optimizations as opts
        from repro.optimizations.base import OptimizationModel
        for name in optimizations_all:
            obj = getattr(opts, name)
            if isinstance(obj, type) and issubclass(obj, OptimizationModel):
                assert obj.__doc__, name
