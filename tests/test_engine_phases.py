"""Deeper engine behavior tests: phase structure, markers, gaps, scaling."""

import dataclasses

import pytest

from repro.framework.config import TrainingConfig
from repro.framework.engine import profile_iteration
from repro.hw.device import CPU_EPYC_7601, GPU_P4000
from repro.tracing.records import EventCategory

from helpers import make_tiny_model


class TestPhaseStructure:
    def test_forward_markers_in_layer_order(self, tiny_model, tiny_trace):
        fwd = tiny_trace.markers("forward")
        assert [m.layer for m in fwd] == [l.name for l in tiny_model.layers]

    def test_backward_markers_reversed(self, tiny_model, tiny_trace):
        bwd = tiny_trace.markers("backward")
        assert [m.layer for m in bwd] == [l.name for l in
                                          tiny_model.backward_order()]

    def test_forward_precedes_backward(self, tiny_trace):
        last_fwd = max(m.end_us for m in tiny_trace.markers("forward"))
        first_bwd = min(m.start_us for m in tiny_trace.markers("backward"))
        assert first_bwd >= last_fwd - 1e-6

    def test_backward_precedes_weight_update(self, tiny_trace):
        last_bwd = max(m.end_us for m in tiny_trace.markers("backward"))
        first_wu = min(m.start_us for m in
                       tiny_trace.markers("weight_update"))
        assert first_wu >= last_bwd - 1e-6

    def test_marker_windows_cover_their_launches(self, tiny_trace):
        apis = [e for e in tiny_trace.by_category(EventCategory.RUNTIME)
                if e.name == "cudaLaunchKernel"]
        markers = tiny_trace.markers()
        for api in apis:
            inside = any(m.start_us <= api.start_us < m.end_us
                         for m in markers)
            # launches outside any marker exist only for the input upload
            assert inside or api.start_us < markers[0].start_us

    def test_weight_update_only_parameterized_layers(self, tiny_model,
                                                     tiny_trace):
        wu_layers = {m.layer for m in tiny_trace.markers("weight_update")}
        expected = {l.name for l in tiny_model.layers if l.params}
        assert wu_layers == expected


class TestGapsAndOverheads:
    def test_cpu_gap_scale_slows_cpu_side(self):
        base = profile_iteration(make_tiny_model())
        scaled_model = dataclasses.replace(make_tiny_model(),
                                           cpu_gap_scale=8.0)
        scaled = profile_iteration(scaled_model)
        assert scaled.duration_us > base.duration_us

    def test_dispatch_gap_parameter(self):
        model = make_tiny_model()
        cheap_cpu = dataclasses.replace(CPU_EPYC_7601, dispatch_gap_us=0.5,
                                        layer_gap_us=1.0)
        cheap = profile_iteration(model, TrainingConfig(cpu=cheap_cpu))
        default = profile_iteration(model, TrainingConfig())
        assert cheap.duration_us < default.duration_us

    def test_launch_api_duration_respected(self, tiny_trace):
        launches = [e for e in tiny_trace.by_category(EventCategory.RUNTIME)
                    if e.name == "cudaLaunchKernel"]
        for api in launches:
            assert api.duration_us == pytest.approx(
                CPU_EPYC_7601.launch_api_us)


class TestDeviceSensitivity:
    def test_slower_gpu_slower_iteration(self):
        model = make_tiny_model()
        fast = profile_iteration(model, TrainingConfig())
        slow = profile_iteration(model, TrainingConfig(gpu=GPU_P4000))
        assert slow.duration_us > fast.duration_us

    def test_gpu_name_in_metadata(self):
        trace = profile_iteration(make_tiny_model(),
                                  TrainingConfig(gpu=GPU_P4000))
        assert trace.metadata["gpu"] == "Quadro-P4000"

    def test_bigger_batch_longer_iteration(self):
        small = profile_iteration(make_tiny_model(batch=2))
        large = profile_iteration(make_tiny_model(batch=16))
        assert large.duration_us > small.duration_us


class TestEventAccounting:
    def test_runtime_api_count(self, tiny_model, tiny_trace):
        """One launch per kernel + upload + DtoH + syncs."""
        kernels = len(tiny_trace.kernels())
        runtime = len(tiny_trace.by_category(EventCategory.RUNTIME))
        # every GPU-side event has a launch; plus 1 DtoH wrapper + 1 final
        # device sync (the upload's cudaMemcpyAsync is the memcpy's launch)
        assert runtime == kernels + 1

    def test_marker_count(self, tiny_model, tiny_trace):
        n_layers = len(tiny_model.layers)
        n_param_layers = sum(1 for l in tiny_model.layers if l.params)
        assert len(tiny_trace.markers()) == 2 * n_layers + n_param_layers
