"""Tests for the hardware what-if models (GPU/CPU upgrade, limit studies)."""

import pytest

from repro.analysis.session import WhatIfSession
from repro.common.errors import ConfigError
from repro.optimizations.hardware import (
    CpuUpgrade,
    GpuUpgrade,
    InfinitelyFastKernels,
)


@pytest.fixture
def session(tiny_model):
    return WhatIfSession.from_model(tiny_model)


class TestGpuUpgrade:
    def test_faster_gpu_helps(self, session):
        pred = session.predict(GpuUpgrade(2.0))
        assert pred.predicted_us < session.baseline_us

    def test_monotone_in_factor(self, session):
        t2 = session.predict(GpuUpgrade(2.0)).predicted_us
        t4 = session.predict(GpuUpgrade(4.0)).predicted_us
        assert t4 <= t2

    def test_sublinear_end_to_end(self, session):
        """Amdahl: 2x GPU never gives a full 2x iteration speedup (CPU
        path unchanged)."""
        pred = session.predict(GpuUpgrade(2.0))
        assert pred.speedup < 2.0

    def test_unit_factor_is_identity(self, session):
        pred = session.predict(GpuUpgrade(1.0))
        assert pred.predicted_us == pytest.approx(session.baseline_us)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            GpuUpgrade(0.0)


class TestCpuUpgrade:
    def test_faster_cpu_helps(self, session):
        pred = session.predict(CpuUpgrade(4.0))
        assert pred.predicted_us < session.baseline_us

    def test_scales_gaps_too(self, session):
        graph, _ = session.predict_simulation(CpuUpgrade(2.0))
        base_gaps = sum(t.gap for t in session.graph.tasks() if t.is_cpu)
        new_gaps = sum(t.gap for t in graph.tasks() if t.is_cpu)
        assert new_gaps == pytest.approx(base_gaps / 2.0, rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CpuUpgrade(-1.0)


class TestInfinitelyFastKernels:
    def test_zeroes_selected_tasks(self, session):
        graph, _ = session.predict_simulation(
            InfinitelyFastKernels(lambda t: t.is_gpu and "sgemm" in t.name))
        gemms = [t for t in graph.tasks() if t.is_gpu and "sgemm" in t.name]
        assert gemms
        assert all(t.duration == 0.0 for t in gemms)

    def test_lower_bound_property(self, session):
        """Making everything GPU free is the GPU-side Amdahl limit."""
        all_free = session.predict(
            InfinitelyFastKernels(lambda t: t.is_gpu))
        some_free = session.predict(
            InfinitelyFastKernels(lambda t: t.is_gpu and "scudnn" in t.name))
        assert all_free.predicted_us <= some_free.predicted_us

    def test_label_in_name(self):
        opt = InfinitelyFastKernels(lambda t: True, label="gemms")
        assert "gemms" in opt.name

    def test_cpu_still_bounds_iteration(self, session):
        """Even with a free GPU, the CPU path keeps a floor."""
        pred = session.predict(InfinitelyFastKernels(lambda t: t.is_gpu))
        cpu_floor = sum(t.duration + t.gap for t in session.graph.tasks()
                        if t.is_cpu) * 0.5
        assert pred.predicted_us > cpu_floor
