"""Tests for PyTorch-DDP-style gradient bucketing."""

import pytest

from repro.common.errors import ConfigError
from repro.framework.bucketing import Bucket, compute_buckets, layer_to_bucket
from repro.models.registry import build_model

from helpers import make_tiny_model


class TestComputeBuckets:
    def test_partition_covers_all_gradients(self):
        model = build_model("resnet50")
        buckets = compute_buckets(model)
        assert sum(b.size_bytes for b in buckets) == model.grad_bytes

    def test_each_parameterized_layer_in_exactly_one_bucket(self):
        model = build_model("resnet50")
        buckets = compute_buckets(model)
        layers = [l for b in buckets for l in b.layers]
        assert len(layers) == len(set(layers))
        expected = {l.name for l in model.layers if l.grad_bytes}
        assert set(layers) == expected

    def test_backward_order(self):
        model = make_tiny_model()
        buckets = compute_buckets(model, bucket_cap_mb=0.001)
        order = [l for b in buckets for l in b.layers]
        bwd = [l.name for l in model.backward_order() if l.grad_bytes]
        assert order == bwd

    def test_bucket_capacity_respected_before_close(self):
        model = build_model("resnet50")
        cap_mb = 25.0
        for bucket in compute_buckets(model, cap_mb):
            # a bucket exceeds cap only by its final layer's contribution
            without_last = bucket.size_bytes - model.layer(
                bucket.trigger_layer).grad_bytes
            assert without_last < cap_mb * 1024 * 1024

    def test_trigger_is_last_layer_in_bucket(self):
        for bucket in compute_buckets(build_model("resnet50")):
            assert bucket.trigger_layer == bucket.layers[-1]

    def test_tiny_cap_gives_one_bucket_per_layer(self):
        model = make_tiny_model()
        buckets = compute_buckets(model, bucket_cap_mb=1e-9)
        n_param_layers = sum(1 for l in model.layers if l.grad_bytes)
        assert len(buckets) == n_param_layers

    def test_huge_cap_gives_single_bucket(self):
        buckets = compute_buckets(make_tiny_model(), bucket_cap_mb=1e6)
        assert len(buckets) == 1

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ConfigError):
            compute_buckets(make_tiny_model(), bucket_cap_mb=0)

    def test_indices_sequential(self):
        buckets = compute_buckets(build_model("resnet50"))
        assert [b.index for b in buckets] == list(range(len(buckets)))


class TestBucketSerialization:
    def test_dict_roundtrip(self):
        bucket = Bucket(index=2, size_bytes=1024, layers=("a", "b"),
                        trigger_layer="b")
        again = Bucket.from_dict(bucket.to_dict())
        assert again == bucket


class TestLayerToBucket:
    def test_inverts_mapping(self):
        buckets = compute_buckets(build_model("resnet50"))
        mapping = layer_to_bucket(buckets)
        for bucket in buckets:
            for layer in bucket.layers:
                assert mapping[layer] == bucket.index

    def test_detects_duplicates(self):
        buckets = [
            Bucket(0, 10, ("a",), "a"),
            Bucket(1, 10, ("a",), "a"),
        ]
        with pytest.raises(ConfigError):
            layer_to_bucket(buckets)
