"""The shared remote tier must never cost correctness — only misses.

A remote sweep-store entry is verified exactly like a local one (embedded
key, current salt, payload checksum), so the failure modes a shared
server introduces — unreachable host, mid-body truncation, salt
generation skew between client and server, plain tampering — must each
degrade to a local miss and a re-simulation, never to an exception and
never to a wrong row.  And when the server is warm and honest, a grid
run against it must be bit-identical to the serial path with zero engine
re-simulations.  This file pins both halves; the CI ``remote-store`` job
runs it against the in-process HTTP backend.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from helpers import make_tiny_model
from repro.__main__ import main
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.scenarios import (
    LocalBackend,
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    StoreServer,
    SweepStore,
)
from repro.scenarios.store import RESULT_SCHEMA_VERSION, _entry_checksum

MODEL = "tinyremote"


def build_tinyremote(batch_size=None):
    """Module-level builder: spawn workers re-import it by name."""
    return make_tiny_model(batch=batch_size or 4)


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    try:
        register_model(MODEL, build_tinyremote)
    except ConfigError:
        pass


@pytest.fixture(scope="module")
def scenarios():
    grid = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={"cluster.bandwidth_gbps": [10.0, 25.0]},
    )
    return grid.expand() + [Scenario(model=MODEL)]


@pytest.fixture(scope="module")
def serial_rows(scenarios):
    return [o.as_row()
            for o in ScenarioRunner().run_grid(scenarios, processes=1)]


def rows_of(outcomes):
    return [o.as_row() for o in outcomes]


# ------------------------------------------------- warm server: bit identity

def test_cold_push_then_warm_remote_rows_are_bit_identical(
        scenarios, serial_rows, tmp_path):
    """The acceptance criterion: warm --remote == serial, zero re-sims."""
    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(scenarios, parallel=2, store=publisher)

    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        report = publisher.push(server.url)
        assert report.transferred == len(scenarios)
        # a second push is a no-op: the hub already lists every key
        assert publisher.push(server.url).skipped == len(scenarios)

        consumer = SweepStore(str(tmp_path / "consumer"), remote=server.url)
        warm = ScenarioRunner().run_grid(scenarios, store=consumer)
        assert rows_of(warm) == serial_rows
        # zero engine re-simulations: every cell was served, read-through
        assert all(o.cached for o in warm)
        assert consumer.stats.remote_hits == len(scenarios)
        assert consumer.stats.remote_rejected == 0

        # the read-through wrote back: a later offline run stays warm
        offline = SweepStore(str(tmp_path / "consumer"))
        again = ScenarioRunner().run_grid(scenarios, store=offline)
        assert rows_of(again) == serial_rows
        assert all(o.cached for o in again)
        assert offline.stats.remote_hits == 0  # never even asked


def test_pull_replicates_a_whole_generation(scenarios, serial_rows,
                                            tmp_path):
    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(scenarios, parallel=2, store=publisher)
    with StoreServer(publisher.root, port=0) as server:
        mirror = SweepStore(str(tmp_path / "mirror"))
        report = mirror.pull(server.url)
        assert report.transferred == len(scenarios)
        assert report.rejected == 0
        # pulling again is a no-op: the sync journal's delta listing
        # re-examines at most the clock-boundary ties, moves nothing,
        # and everything it does list is already trustworthy locally
        again = mirror.pull(server.url)
        assert again.transferred == 0 and again.rejected == 0
        assert again.examined <= len(scenarios)
        assert again.skipped == again.examined
    # the mirror serves offline, bit-identically
    warm = ScenarioRunner().run_grid(scenarios, store=mirror)
    assert rows_of(warm) == serial_rows
    assert all(o.cached for o in warm)


# ------------------------------------------------------------- failure modes

def test_unreachable_server_degrades_to_local_misses(scenarios,
                                                     serial_rows, tmp_path):
    store = SweepStore(str(tmp_path / "store"),
                       remote="http://127.0.0.1:1")
    store.remote.timeout_s = 0.2
    outcomes = ScenarioRunner().run_grid(scenarios, store=store)
    assert rows_of(outcomes) == serial_rows
    assert all(not o.cached for o in outcomes)  # computed, never crashed
    assert store.stats.remote_hits == 0


def test_salt_skew_between_client_and_server_is_a_miss(scenarios,
                                                       serial_rows,
                                                       tmp_path):
    """A hand-copied entry from another salt generation must not serve.

    Normally skew shows up as a 404 (the key itself folds in the salt);
    the nastier case is an entry *at the client's key path* whose body
    carries another generation's salt — internally consistent, checksum
    and all.  The client's verification must still refuse it.
    """
    scenario = scenarios[0]
    client = SweepStore(str(tmp_path / "client"))
    key = client.key(scenario)
    payload = {
        "format": RESULT_SCHEMA_VERSION,
        "key": key,
        "kind": "predict",
        "salt": "v1:another-generation-entirely",
        "scenario": scenario.to_dict(),
        "values": {"baseline_us": 1.0, "predicted_us": 1.0},
    }
    payload["checksum"] = _entry_checksum(payload)  # internally consistent
    server_dir = tmp_path / "server"
    LocalBackend(str(server_dir)).put(key, json.dumps(payload).encode())

    with StoreServer(str(server_dir), port=0) as server:
        store = SweepStore(str(tmp_path / "client"), remote=server.url)
        assert store.get(scenario) is None  # rejected, not served
        assert store.stats.remote_rejected == 1
        outcomes = ScenarioRunner().run_grid([scenario], store=store)
        assert rows_of(outcomes) == [serial_rows[0]]  # re-simulated


def test_tampered_remote_values_fail_the_checksum(scenarios, tmp_path):
    publisher = SweepStore(str(tmp_path / "server"))
    scenario = scenarios[0]
    key = publisher.put(scenario, {"baseline_us": 1.0, "predicted_us": 1.0})
    # flip a value after the checksum was computed
    path = publisher.path_for(key)
    with open(path) as f:
        payload = json.load(f)
    payload["values"]["predicted_us"] = 0.5
    LocalBackend(publisher.root).put(key, json.dumps(payload).encode())

    with StoreServer(publisher.root, port=0) as server:
        store = SweepStore(str(tmp_path / "client"), remote=server.url)
        assert store.get(scenario) is None
        assert store.stats.remote_rejected == 1
        assert store.stats.remote_hits == 0


class _TruncatingHandler(BaseHTTPRequestHandler):
    """Claims a full Content-Length, sends half the body, hangs up."""

    payload = b""

    def log_message(self, format, *args):  # noqa: A002
        """Keep the test output clean."""

    def do_GET(self):
        """Send a deliberately truncated entry body."""
        self.send_response(200)
        self.send_header("Content-Length", str(len(self.payload)))
        self.end_headers()
        self.wfile.write(self.payload[: len(self.payload) // 2])
        self.wfile.flush()
        self.connection.close()


def test_mid_body_truncation_is_a_miss_not_a_crash(scenarios, serial_rows,
                                                   tmp_path):
    scenario = scenarios[0]
    probe = SweepStore(str(tmp_path / "probe"))
    key = probe.put(scenario, {"baseline_us": 1.0, "predicted_us": 1.0})
    with open(probe.path_for(key), "rb") as f:
        _TruncatingHandler.payload = f.read()

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _TruncatingHandler)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_address[1]}"
        store = SweepStore(str(tmp_path / "client"), remote=url)
        assert store.get(scenario) is None  # IncompleteRead -> miss
        outcomes = ScenarioRunner().run_grid([scenario], store=store)
        assert rows_of(outcomes) == [serial_rows[0]]
    finally:
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()


def test_read_through_write_back_rides_a_held_lease(scenarios, tmp_path):
    """The deferred-inherit path calls get() while holding the cell's
    lease: the remote write-back must ride that lease instead of
    spinning the full put-lease timeout against its own lock."""
    import time as time_mod

    publisher = SweepStore(str(tmp_path / "publisher"))
    scenario = scenarios[0]
    publisher.put(scenario, {"baseline_us": 1.0, "predicted_us": 2.0})
    with StoreServer(publisher.root, port=0) as server:
        client = SweepStore(str(tmp_path / "client"), remote=server.url)
        key = client.key(scenario)
        lease = client.lease(key)
        assert lease.try_acquire()
        start = time_mod.monotonic()
        values = client.get(scenario, lease=lease)
        elapsed = time_mod.monotonic() - start
        assert values == {"baseline_us": 1.0, "predicted_us": 2.0}
        assert elapsed < 0.4, f"write-back stalled {elapsed:.2f}s"
        assert lease.owned  # still the caller's to release
        lease.release()


def test_push_force_repairs_a_corrupt_remote_copy(scenarios, tmp_path):
    publisher = SweepStore(str(tmp_path / "publisher"))
    scenario = scenarios[0]
    key = publisher.put(scenario, {"baseline_us": 1.0, "predicted_us": 2.0})
    hub = tmp_path / "hub"
    LocalBackend(str(hub)).put(key, b'{"key": "' + key.encode() + b'", tru')
    with StoreServer(str(hub), port=0) as server:
        # a plain push skips the key: the hub already lists it
        assert publisher.push(server.url).skipped == 1
        consumer = SweepStore(str(tmp_path / "c1"), remote=server.url)
        assert consumer.get(scenario) is None  # corrupt copy: rejected
        # --force re-uploads and repairs it
        assert publisher.push(server.url, force=True).transferred == 1
        repaired = SweepStore(str(tmp_path / "c2"), remote=server.url)
        assert repaired.get(scenario) == {"baseline_us": 1.0,
                                          "predicted_us": 2.0}


class _DyingHandler(BaseHTTPRequestHandler):
    """Lists one key, then fails every entry fetch with a 500."""

    key = ""

    def log_message(self, format, *args):  # noqa: A002
        """Keep the test output clean."""

    def do_GET(self):
        """Answer /keys; refuse everything else server-side."""
        if self.path == "/keys":
            body = json.dumps([self.key]).encode()
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(500, "the server died mid-pull")


def test_pull_raises_when_the_server_dies_mid_transfer(tmp_path):
    """A dead server must error out of pull, not masquerade its entries
    as 'rejected' while exiting successfully."""
    from repro.scenarios import BackendError

    _DyingHandler.key = "ab" * 16
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _DyingHandler)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_address[1]}"
        store = SweepStore(str(tmp_path / "store"))
        with pytest.raises(BackendError):
            store.pull(url)
    finally:
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()


def test_pull_retries_transient_faults_then_succeeds(scenarios, tmp_path):
    """Two injected transient errors on one fetch are absorbed by the
    retry policy; the pull completes with every entry landed."""
    from repro.scenarios import (
        FaultInjectingBackend,
        FaultPlan,
        FaultRule,
        LocalBackend,
        RetryPolicy,
    )

    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(scenarios, parallel=2, store=publisher)
    flaky = FaultInjectingBackend(
        LocalBackend(publisher.root),
        FaultPlan(rules=(FaultRule(op="fetch", nth=2, action="error",
                                   count=2),)))
    mirror = SweepStore(str(tmp_path / "mirror"))
    report = mirror.pull(flaky, retry=RetryPolicy(max_attempts=3,
                                                  base_delay_s=0.0,
                                                  jitter=0.0))
    assert report.transferred == len(scenarios)
    assert flaky.injected == ["fetch#2:error", "fetch#3:error"]
    assert len(mirror) == len(scenarios)


def test_pull_mid_transfer_death_reports_partial_progress(scenarios,
                                                          tmp_path):
    """The satellite scenario: the server dies partway through a pull.

    Retries are exhausted, the failure is loud, and the error's partial
    report counts exactly the entries that actually landed — never the
    ones in flight when the server died.
    """
    from repro.scenarios import (
        BackendError,
        FaultInjectingBackend,
        FaultPlan,
        FaultRule,
        LocalBackend,
        RetryPolicy,
    )

    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(scenarios, parallel=2, store=publisher)
    # the third fetch fails and the server stays dead (count=0 = forever)
    dying = FaultInjectingBackend(
        LocalBackend(publisher.root),
        FaultPlan(rules=(FaultRule(op="fetch", nth=3, action="error",
                                   count=0),)))
    mirror = SweepStore(str(tmp_path / "mirror"))
    retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
    with pytest.raises(BackendError) as err:
        mirror.pull(dying, retry=retry)
    # loud, with the partial progress in the message and on the error
    assert "Partial progress" in str(err.value)
    assert err.value.partial is not None
    assert err.value.partial.transferred == 2
    # the dead fetch was actually retried before giving up
    assert dying.counts["fetch"] == 4  # 2 clean + 2 attempts at the third
    # the mirror holds exactly the entries that landed — no phantoms
    assert len(mirror) == err.value.partial.transferred


def test_push_mid_transfer_death_reports_partial_progress(scenarios,
                                                          tmp_path):
    """Push travels the same loud-partial path as pull."""
    from repro.scenarios import (
        BackendError,
        FaultInjectingBackend,
        FaultPlan,
        FaultRule,
        LocalBackend,
        RetryPolicy,
    )

    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(scenarios, parallel=2, store=publisher)
    hub = FaultInjectingBackend(
        LocalBackend(str(tmp_path / "hub")),
        FaultPlan(rules=(FaultRule(op="put", nth=2, action="error",
                                   count=0),)))
    retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
    with pytest.raises(BackendError) as err:
        publisher.push(hub, retry=retry)
    assert err.value.partial is not None
    assert err.value.partial.transferred == 1
    assert len(list(LocalBackend(str(tmp_path / "hub")).iter_keys())) == 1


# --------------------------------------------------------------------- CLI

def run_cli(*argv):
    return main(list(argv))


def test_cli_serve_with_duration_exits_cleanly(tmp_path, capsys):
    root = str(tmp_path / "store")
    SweepStore(root).put(Scenario(model="resnet50"), {"x": 1.0})
    assert run_cli("store", "serve", root, "--port", "0",
                   "--duration", "0.05") == 0
    assert "serving" in capsys.readouterr().err


def test_cli_push_pull_round_trip(tmp_path, capsys):
    src = SweepStore(str(tmp_path / "src"))
    src.put(Scenario(model="resnet50"), {"x": 1.0})
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        assert run_cli("store", "push", src.root,
                       "--remote", server.url) == 0
        assert json.loads(capsys.readouterr().out)["transferred"] == 1
        assert run_cli("store", "pull", str(tmp_path / "dst"),
                       "--remote", server.url) == 0
        assert json.loads(capsys.readouterr().out)["transferred"] == 1
    assert len(SweepStore(str(tmp_path / "dst"))) == 1


def test_cli_push_to_unreachable_server_fails_loudly(tmp_path, capsys):
    root = str(tmp_path / "store")
    SweepStore(root).put(Scenario(model="resnet50"), {"x": 1.0})
    assert run_cli("store", "push", root,
                   "--remote", "http://127.0.0.1:1", "--retries", "0") == 2
    assert "error" in capsys.readouterr().err


def test_cli_pull_mid_transfer_death_is_loud_and_accurate(tmp_path,
                                                          capsys):
    """--retries rides the CLI into the pull path; the failure names the
    partial progress instead of exiting clean with missing entries."""
    _DyingHandler.key = "cd" * 16
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _DyingHandler)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_address[1]}"
        assert run_cli("store", "pull", str(tmp_path / "dst"),
                       "--remote", url, "--retries", "0") == 2
        err = capsys.readouterr().err
        assert "Partial progress" in err
        assert len(SweepStore(str(tmp_path / "dst"))) == 0
    finally:
        httpd.shutdown()
        thread.join(timeout=5.0)
        httpd.server_close()


def test_cli_sweep_remote_requires_a_local_store(tmp_path, capsys):
    grid = tmp_path / "grid.json"
    grid.write_text(json.dumps({"model": "resnet50"}))
    assert run_cli("sweep", str(grid),
                   "--remote", "http://127.0.0.1:1") == 2
    assert "--store" in capsys.readouterr().err


def test_cli_experiment_remote_requires_a_local_store(capsys):
    assert run_cli("experiment", "fig5",
                   "--remote", "http://127.0.0.1:1") == 2
    assert "--store" in capsys.readouterr().err
