"""Tests for single-machine multi-GPU training (PCIe ring, no network)."""


from repro.analysis.metrics import prediction_error
from repro.analysis.session import WhatIfSession
from repro.framework import groundtruth as gt
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.optimizations import DistributedTraining

from helpers import make_tiny_model


def pcie_cluster(gpus: int) -> ClusterSpec:
    # the network spec is irrelevant for a single machine but required
    return ClusterSpec(1, gpus, GPU_2080TI, NetworkSpec(10.0))


class TestPcieRing:
    def test_pcie_ring_much_faster_than_slow_network(self):
        model = make_tiny_model()
        local = gt.run_distributed(model, pcie_cluster(4))
        slow_net = gt.run_distributed(
            model, ClusterSpec(4, 1, GPU_2080TI, NetworkSpec(1.0)))
        assert local.iteration_us < slow_net.iteration_us

    def test_prediction_accuracy_on_pcie(self):
        model = make_tiny_model()
        session = WhatIfSession.from_model(model)
        for gpus in (2, 4):
            cluster = pcie_cluster(gpus)
            truth = gt.run_distributed(model, cluster)
            pred = session.predict(DistributedTraining(), cluster=cluster)
            assert prediction_error(pred.predicted_us,
                                    truth.iteration_us) < 0.10

    def test_scaling_monotone_in_gpus(self):
        model = make_tiny_model()
        session = WhatIfSession.from_model(model)
        t2 = session.predict(DistributedTraining(),
                             cluster=pcie_cluster(2)).predicted_us
        t8 = session.predict(DistributedTraining(),
                             cluster=pcie_cluster(8)).predicted_us
        assert t8 >= t2

    def test_cluster_properties(self):
        cluster = pcie_cluster(4)
        assert not cluster.crosses_network
        assert cluster.ring_latency_us() < NetworkSpec(10.0).latency_us
