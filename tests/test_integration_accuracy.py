"""Integration tests: the paper's headline accuracy claims.

These run the full pipeline (profile -> graph -> transform -> simulate vs
ground-truth execution) on the real zoo models and assert the reproduced
numbers land in the paper's bands.  They are the contract of the whole
reproduction; everything else exists so these pass.
"""

import pytest

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.analysis.session import WhatIfSession
from repro.framework import groundtruth as gt
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import build_model
from repro.optimizations import (
    AutomaticMixedPrecision,
    DistributedTraining,
    FusedAdam,
    ReconstructBatchnorm,
)
from repro.experiments.sec64_batchnorm import caffe_config


@pytest.fixture(scope="module")
def sessions():
    return {name: WhatIfSession.profile(name)
            for name in ("resnet50", "gnmt", "bert_base", "bert_large")}


class TestReplayFidelity:
    """Simulating the untouched graph reproduces the measured iteration."""

    @pytest.mark.parametrize("name", ["resnet50", "gnmt", "bert_base",
                                      "bert_large"])
    def test_baseline_replay(self, sessions, name):
        session = sessions[name]
        assert session.baseline_us == pytest.approx(
            session.trace.duration_us, rel=0.005)


class TestAMPAccuracy:
    """Figure 5: prediction error below 13% on all four models."""

    @pytest.mark.parametrize("name", ["resnet50", "gnmt", "bert_base",
                                      "bert_large"])
    def test_error_band(self, sessions, name):
        session = sessions[name]
        pred = session.predict(AutomaticMixedPrecision())
        truth = gt.run_amp(build_model(name))
        assert prediction_error(pred.predicted_us, truth.iteration_us) < 0.13

    def test_speedups_below_per_kernel_ideal(self, sessions):
        """Section 6.2: end-to-end speedups well below the 3x kernel ideal."""
        for name, session in sessions.items():
            truth = gt.run_amp(build_model(name))
            assert session.baseline_us / truth.iteration_us < 2.5

    def test_bert_gains_are_modest(self, sessions):
        """BERT is CPU/update-bound: AMP improves it far less than CNNs."""
        bert = improvement_percent(
            sessions["bert_large"].baseline_us,
            gt.run_amp(build_model("bert_large")).iteration_us)
        resnet = improvement_percent(
            sessions["resnet50"].baseline_us,
            gt.run_amp(build_model("resnet50")).iteration_us)
        assert bert < 20.0 < resnet


class TestFusedAdamAccuracy:
    """Figure 7: error below 13%; BERT_large improves ~38.7%."""

    @pytest.mark.parametrize("name", ["gnmt", "bert_base", "bert_large"])
    def test_error_band(self, sessions, name):
        session = sessions[name]
        pred = session.predict(FusedAdam())
        truth = gt.run_fused_adam(build_model(name))
        assert prediction_error(pred.predicted_us, truth.iteration_us) < 0.13

    def test_bert_large_improvement_matches_paper(self, sessions):
        truth = gt.run_fused_adam(build_model("bert_large"))
        improvement = improvement_percent(sessions["bert_large"].baseline_us,
                                          truth.iteration_us)
        assert improvement == pytest.approx(38.7, abs=6.0)

    def test_gnmt_improvement_small(self, sessions):
        """GNMT's update phase is <10% of its iteration (Section 6.3)."""
        truth = gt.run_fused_adam(build_model("gnmt"))
        improvement = improvement_percent(sessions["gnmt"].baseline_us,
                                          truth.iteration_us)
        assert improvement < 15.0


class TestDistributedAccuracy:
    """Figure 8: at most ~10% error in most configurations."""

    def test_resnet_configs(self, sessions):
        session = sessions["resnet50"]
        model = build_model("resnet50")
        errors = []
        for machines, gpus in ((2, 1), (4, 1), (2, 2)):
            for bw in (10.0, 40.0):
                cluster = ClusterSpec(machines, gpus, GPU_2080TI,
                                      NetworkSpec(bw))
                truth = gt.run_distributed(model, cluster)
                pred = session.predict(DistributedTraining(), cluster=cluster)
                errors.append(prediction_error(pred.predicted_us,
                                               truth.iteration_us))
        assert max(errors) < 0.10

    def test_prediction_tracks_bandwidth_trend(self, sessions):
        session = sessions["gnmt"]
        times = []
        for bw in (10.0, 20.0, 40.0):
            cluster = ClusterSpec(4, 1, GPU_2080TI, NetworkSpec(bw))
            times.append(session.predict(DistributedTraining(),
                                         cluster=cluster).predicted_us)
        assert times[0] > times[1] > times[2]


class TestBatchnormConclusion:
    """Section 6.4: prediction ~12.7%, ground truth ~7% — the prediction
    correctly flags the optimization as less promising than claimed."""

    def test_bands(self):
        config = caffe_config()
        model = build_model("densenet121")
        session = WhatIfSession.from_model(model, config=config)
        pred = session.predict(ReconstructBatchnorm())
        truth = gt.run_reconstructed_batchnorm(model, config)
        gt_improvement = improvement_percent(session.baseline_us,
                                             truth.iteration_us)
        assert pred.improvement_percent == pytest.approx(12.7, abs=4.0)
        assert gt_improvement == pytest.approx(7.0, abs=3.0)
        assert pred.improvement_percent > gt_improvement
        assert pred.improvement_percent < 17.5  # the claimed speedup
