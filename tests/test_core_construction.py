"""Tests for dependency-graph construction (the five dependency types)."""

import pytest

from repro.common.errors import TraceError
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.core.task import TaskKind
from repro.framework.config import TrainingConfig
from repro.framework.engine import profile_iteration
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.tracing.trace import Trace

from helpers import make_tiny_model


@pytest.fixture
def tiny_graph(tiny_trace):
    return build_graph(tiny_trace)


class TestConstruction:
    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            build_graph(Trace())

    def test_markers_are_not_tasks(self, tiny_trace, tiny_graph):
        executable = [e for e in tiny_trace.events
                      if e.category.value != "marker"]
        # +1: the blocking DtoH API splits into launch + wait
        assert len(tiny_graph) == len(executable) + 1

    def test_correlation_edges(self, tiny_graph):
        """Dependency type 3: every GPU task depends on its launch API."""
        for task in tiny_graph.tasks():
            if task.is_gpu:
                preds = tiny_graph.predecessors(task)
                launches = [p for p in preds if p.is_cpu]
                assert len(launches) == 1
                assert launches[0].correlation_id == task.correlation_id

    def test_sync_has_gpu_dependency(self, tiny_graph):
        """Dependency type 4: sync APIs gated by GPU tasks."""
        syncs = [t for t in tiny_graph.tasks()
                 if t.is_cpu and "Synchronize" in t.name]
        assert syncs
        for sync in syncs:
            assert any(p.is_gpu or p.is_comm
                       for p in tiny_graph.predecessors(sync))

    def test_sync_duration_stripped(self, tiny_graph):
        """The wait part of a sync API must not be replayed."""
        for task in tiny_graph.tasks():
            if task.is_cpu and "Synchronize" in task.name:
                assert task.duration < 50.0

    def test_blocking_dtoh_split(self, tiny_graph):
        waits = [t for t in tiny_graph.tasks() if t.name.endswith("#wait")]
        assert len(waits) == 1
        preds = tiny_graph.predecessors(waits[0])
        assert any(p.kind is TaskKind.MEMCPY for p in preds)

    def test_cpu_gaps_nonnegative(self, tiny_graph):
        for task in tiny_graph.tasks():
            assert task.gap >= 0.0

    def test_gaps_recover_hidden_cpu_time(self, tiny_graph):
        """The engine's silent dispatch gaps must reappear as task gaps."""
        cpu_gap_total = sum(t.gap for t in tiny_graph.tasks() if t.is_cpu)
        assert cpu_gap_total > 0.0

    def test_graph_validates(self, tiny_graph):
        tiny_graph.validate()


class TestReplayFidelity:
    """Simulating the unmodified graph must reproduce the traced time —
    the paper's prerequisite for trusting what-if predictions."""

    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_tiny_model(self, optimizer):
        trace = profile_iteration(make_tiny_model(optimizer=optimizer))
        res = simulate(build_graph(trace))
        assert res.makespan_us == pytest.approx(trace.duration_us, rel=0.01)

    def test_resnet(self, resnet_trace):
        res = simulate(build_graph(resnet_trace))
        assert res.makespan_us == pytest.approx(resnet_trace.duration_us,
                                                rel=0.005)

    def test_bert(self, bert_base_trace):
        res = simulate(build_graph(bert_base_trace))
        assert res.makespan_us == pytest.approx(bert_base_trace.duration_us,
                                                rel=0.005)

    def test_fp16_trace(self):
        trace = profile_iteration(make_tiny_model(),
                                  TrainingConfig(precision="fp16"))
        res = simulate(build_graph(trace))
        assert res.makespan_us == pytest.approx(trace.duration_us, rel=0.01)

    def test_distributed_trace(self):
        """Dependency type 5: comm tasks replay correctly too."""
        cluster = ClusterSpec(2, 1, GPU_2080TI, NetworkSpec(10.0))
        trace = profile_iteration(make_tiny_model(), cluster=cluster)
        graph = build_graph(trace)
        comm = [t for t in graph.tasks() if t.is_comm]
        assert comm
        for task in comm:
            assert any(p.is_gpu for p in graph.predecessors(task))
        res = simulate(graph)
        assert res.makespan_us == pytest.approx(trace.duration_us, rel=0.02)
