"""Tests for the framework execution engine (the substrate)."""

import pytest

from repro.common.errors import ConfigError
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine, profile_iteration
from repro.hw.device import GPU_2080TI, GPU_P4000
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.tracing.records import EventCategory

from helpers import make_tiny_model


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.framework == "pytorch"
        assert config.precision == "fp32"

    def test_rejects_unknown_framework(self):
        with pytest.raises(ConfigError):
            TrainingConfig(framework="jax")

    def test_rejects_unknown_precision(self):
        with pytest.raises(ConfigError):
            TrainingConfig(precision="int8")

    def test_rejects_unknown_optimizer(self):
        with pytest.raises(ConfigError):
            TrainingConfig(optimizer="lamb")

    def test_with_returns_modified_copy(self):
        config = TrainingConfig()
        fp16 = config.with_(precision="fp16")
        assert fp16.precision == "fp16"
        assert config.precision == "fp32"

    def test_resolve_optimizer(self):
        assert TrainingConfig().resolve_optimizer("adam") == "adam"
        assert TrainingConfig(optimizer="sgd").resolve_optimizer("adam") == "sgd"


class TestEngineBasics:
    def test_trace_validates(self, tiny_model):
        trace = profile_iteration(tiny_model)
        trace.validate()  # no exception

    def test_deterministic(self, tiny_model):
        t1 = profile_iteration(tiny_model)
        t2 = profile_iteration(tiny_model)
        assert t1.duration_us == t2.duration_us
        assert len(t1) == len(t2)

    def test_contains_all_phases(self, tiny_trace):
        phases = {m.phase for m in tiny_trace.markers()}
        assert phases == {"forward", "backward", "weight_update"}

    def test_every_kernel_has_launch_api(self, tiny_trace):
        kernel_corrs = {e.correlation_id for e in tiny_trace.kernels()}
        api_corrs = {e.correlation_id
                     for e in tiny_trace.by_category(EventCategory.RUNTIME)
                     if e.correlation_id is not None}
        assert kernel_corrs <= api_corrs

    def test_kernel_launched_before_execution(self, tiny_trace):
        apis = {e.correlation_id: e
                for e in tiny_trace.by_category(EventCategory.RUNTIME)
                if e.correlation_id is not None}
        for kernel in tiny_trace.kernels():
            launch = apis[kernel.correlation_id]
            assert kernel.start_us >= launch.start_us

    def test_data_loading_first(self, tiny_trace):
        first = tiny_trace.events[0]
        assert first.category is EventCategory.DATALOAD

    def test_ends_with_device_sync(self, tiny_trace):
        runtime = tiny_trace.by_category(EventCategory.RUNTIME)
        assert runtime[-1].name == "cudaDeviceSynchronize"

    def test_metadata_complete(self, tiny_trace):
        meta = tiny_trace.metadata
        for key in ("model", "buckets", "layer_order", "layer_kinds",
                    "layer_grad_bytes", "param_tensors", "optimizer"):
            assert key in meta, key

    def test_adam_weight_update_kernel_count(self, tiny_model, tiny_trace):
        # 13 pointwise kernels per parameter tensor
        expected = 13 * len(tiny_model.param_tensors)
        pointwise = [e for e in tiny_trace.kernels()
                     if "PointwiseApply" in e.name]
        assert len(pointwise) == expected

    def test_sgd_variant_launches_fewer_kernels(self):
        adam = profile_iteration(make_tiny_model(optimizer="adam"))
        sgd = profile_iteration(make_tiny_model(optimizer="sgd"))
        assert len(sgd) < len(adam)


class TestPrecisionAndOptimizerVariants:
    def test_fp16_is_faster(self, tiny_model):
        fp32 = profile_iteration(tiny_model, TrainingConfig())
        fp16 = profile_iteration(tiny_model, TrainingConfig(precision="fp16"))
        assert fp16.duration_us < fp32.duration_us

    def test_fp16_does_not_change_cpu_api_count(self, tiny_model):
        fp32 = profile_iteration(tiny_model, TrainingConfig())
        fp16 = profile_iteration(tiny_model, TrainingConfig(precision="fp16"))
        n32 = len(fp32.by_category(EventCategory.RUNTIME))
        n16 = len(fp16.by_category(EventCategory.RUNTIME))
        assert n32 == n16

    def test_fused_adam_single_update_kernel(self, tiny_model):
        trace = profile_iteration(
            tiny_model, TrainingConfig(optimizer="fused_adam"))
        fused = trace.find("fused_adam")
        assert len([e for e in fused if e.category is EventCategory.KERNEL]) == 1

    def test_fused_adam_faster_than_unfused(self, tiny_model):
        unfused = profile_iteration(tiny_model)
        fused = profile_iteration(
            tiny_model, TrainingConfig(optimizer="fused_adam"))
        assert fused.duration_us < unfused.duration_us


class TestDistributedExecution:
    def _cluster(self, machines=2, gpus=1, bw=10.0):
        return ClusterSpec(machines, gpus, GPU_2080TI, NetworkSpec(bw))

    def test_comm_events_inserted(self, tiny_model):
        trace = profile_iteration(tiny_model, cluster=self._cluster())
        comm = trace.by_category(EventCategory.COMM)
        assert len(comm) == len(tiny_model and trace.metadata["buckets"])

    def test_single_worker_cluster_no_comm(self, tiny_model):
        trace = profile_iteration(tiny_model, cluster=self._cluster(1, 1))
        assert not trace.by_category(EventCategory.COMM)

    def test_distributed_slower_than_single(self, tiny_model):
        single = profile_iteration(tiny_model)
        multi = profile_iteration(tiny_model, cluster=self._cluster())
        assert multi.duration_us > single.duration_us

    def test_lower_bandwidth_is_slower(self, tiny_model):
        fast = profile_iteration(tiny_model, cluster=self._cluster(bw=40.0))
        slow = profile_iteration(tiny_model, cluster=self._cluster(bw=5.0))
        assert slow.duration_us > fast.duration_us

    def test_sync_variant_adds_syncs(self, tiny_model):
        plain = profile_iteration(tiny_model, cluster=self._cluster())
        synced = profile_iteration(tiny_model, cluster=self._cluster(),
                                   sync_before_allreduce=True)
        n_plain = len(plain.find("cudaStreamSynchronize"))
        n_synced = len(synced.find("cudaStreamSynchronize"))
        assert n_synced > n_plain

    def test_comm_duration_exceeds_theoretical(self, tiny_model):
        trace = profile_iteration(tiny_model, cluster=self._cluster())
        for comm in trace.by_category(EventCategory.COMM):
            assert comm.duration_us > comm.metadata["theoretical_us"]

    def test_gpu_mismatch_rejected(self, tiny_model):
        cluster = ClusterSpec(2, 1, GPU_P4000, NetworkSpec(10.0))
        with pytest.raises(ConfigError):
            Engine(model=tiny_model, config=TrainingConfig(),
                   cluster=cluster).run_iteration()

    def test_cluster_metadata_recorded(self, tiny_model):
        trace = profile_iteration(tiny_model, cluster=self._cluster(3, 2))
        assert trace.metadata["cluster"]["machines"] == 3
        assert trace.metadata["cluster"]["gpus_per_machine"] == 2
