"""Tests for repro.common.intervals, including hypothesis properties."""

from hypothesis import given, strategies as st

from repro.common.intervals import (
    intersect,
    intersect_total,
    merge_intervals,
    subtract,
    subtract_total,
    total_length,
)

interval = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
).map(lambda t: (min(t), max(t)))
interval_list = st.lists(interval, max_size=20)


class TestMerge:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_preserved(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlap_merged(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_zero_length_dropped(self):
        assert merge_intervals([(1, 1)]) == []

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    @given(interval_list)
    def test_output_disjoint_and_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2

    @given(interval_list)
    def test_merge_idempotent(self, intervals):
        once = merge_intervals(intervals)
        assert merge_intervals(once) == once


class TestTotalLength:
    def test_simple(self):
        assert total_length([(0, 2), (3, 4)]) == 3.0

    def test_overlap_not_double_counted(self):
        assert total_length([(0, 2), (1, 3)]) == 3.0

    @given(interval_list)
    def test_bounded_by_span(self, intervals):
        if not intervals:
            return
        merged = merge_intervals(intervals)
        if not merged:
            return
        span = merged[-1][1] - merged[0][0]
        assert total_length(intervals) <= span + 1e-9


class TestIntersect:
    def test_disjoint(self):
        assert intersect([(0, 1)], [(2, 3)]) == []

    def test_contained(self):
        assert intersect([(0, 10)], [(2, 3)]) == [(2, 3)]

    def test_partial(self):
        assert intersect([(0, 5)], [(3, 8)]) == [(3, 5)]

    @given(interval_list, interval_list)
    def test_commutative(self, a, b):
        assert intersect_total(a, b) == intersect_total(b, a)

    @given(interval_list, interval_list)
    def test_bounded_by_each_side(self, a, b):
        both = intersect_total(a, b)
        assert both <= total_length(a) + 1e-9
        assert both <= total_length(b) + 1e-9


class TestSubtract:
    def test_full_removal(self):
        assert subtract([(0, 5)], [(0, 5)]) == []

    def test_punch_hole(self):
        assert subtract([(0, 10)], [(3, 4)]) == [(0, 3), (4, 10)]

    def test_no_overlap(self):
        assert subtract([(0, 1)], [(5, 6)]) == [(0, 1)]

    def test_left_trim(self):
        assert subtract([(0, 10)], [(0, 4)]) == [(4, 10)]

    @given(interval_list, interval_list)
    def test_partition_identity(self, a, b):
        """|a| == |a - b| + |a intersect b| (the breakdown invariant)."""
        lhs = total_length(a)
        rhs = subtract_total(a, b) + intersect_total(a, b)
        assert abs(lhs - rhs) < 1e-6
