"""Tests for repro.core.task and repro.core.graph."""

import pytest

from repro.common.errors import ConfigError, GraphConsistencyError
from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.tracing.records import comm_channel, cpu_thread, gpu_stream


def make_task(name="t", kind=TaskKind.CPU, thread=None, duration=1.0, **kw):
    return Task(name=name, kind=kind, thread=thread or cpu_thread(0),
                duration=duration, **kw)


class TestTask:
    def test_identity_semantics(self):
        a = make_task()
        b = make_task()
        assert a != b
        assert len({a, b}) == 2

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigError):
            make_task(duration=-1.0)

    def test_rejects_negative_gap(self):
        with pytest.raises(ConfigError):
            make_task(gap=-1.0)

    def test_kind_helpers(self):
        assert make_task(kind=TaskKind.GPU_KERNEL, thread=gpu_stream(0)).is_gpu
        assert make_task(kind=TaskKind.MEMCPY, thread=gpu_stream(0)).is_gpu
        assert make_task(kind=TaskKind.CPU).is_cpu
        assert make_task(kind=TaskKind.DATALOAD).is_cpu
        assert make_task(kind=TaskKind.COMM, thread=comm_channel(0)).is_comm

    def test_scale_duration(self):
        t = make_task(duration=10.0)
        t.scale_duration(0.5)
        assert t.duration == 5.0
        with pytest.raises(ConfigError):
            t.scale_duration(-1.0)


class TestGraphMutation:
    def test_append_and_len(self):
        g = DependencyGraph()
        g.append(make_task("a"))
        g.append(make_task("b"))
        assert len(g) == 2

    def test_double_append_rejected(self):
        g = DependencyGraph()
        t = g.append(make_task())
        with pytest.raises(GraphConsistencyError):
            g.append(t)

    def test_insert_after_orders_correctly(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        c = g.append(make_task("c"))
        b = g.insert_after(a, make_task("b"))
        assert [t.name for t in g.tasks_on(cpu_thread(0))] == ["a", "b", "c"]
        assert g.thread_successor(a) is b
        assert g.thread_predecessor(c) is b

    def test_insert_before(self):
        g = DependencyGraph()
        b = g.append(make_task("b"))
        a = g.insert_before(b, make_task("a"))
        assert [t.name for t in g.tasks_on(cpu_thread(0))] == ["a", "b"]

    def test_insert_forces_anchor_thread(self):
        g = DependencyGraph()
        a = g.append(make_task("a", thread=gpu_stream(1),
                               kind=TaskKind.GPU_KERNEL))
        b = make_task("b", thread=cpu_thread(0))
        g.insert_after(a, b)
        assert b.thread == gpu_stream(1)

    def test_remove_heals_thread_order(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b"))
        c = g.append(make_task("c"))
        g.remove(b)
        assert g.thread_successor(a) is c

    def test_remove_rewires_explicit_edges(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        c = g.append(make_task("c", thread=comm_channel(0),
                               kind=TaskKind.COMM))
        g.add_dependency(a, b)
        g.add_dependency(b, c)
        g.remove(b)
        assert c in g.successors(a)

    def test_remove_without_rewire(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        c = g.append(make_task("c", thread=comm_channel(0),
                               kind=TaskKind.COMM))
        g.add_dependency(a, b)
        g.add_dependency(b, c)
        g.remove(b, rewire=False)
        assert c not in g.successors(a)

    def test_remove_unknown_rejected(self):
        g = DependencyGraph()
        with pytest.raises(GraphConsistencyError):
            g.remove(make_task())

    def test_self_dependency_rejected(self):
        g = DependencyGraph()
        t = g.append(make_task())
        with pytest.raises(GraphConsistencyError):
            g.add_dependency(t, t)

    def test_select(self):
        g = DependencyGraph()
        g.append(make_task("sgemm_1"))
        g.append(make_task("relu_1"))
        assert len(g.select(lambda t: "sgemm" in t.name)) == 1


class TestGraphValidation:
    def test_backward_edge_within_thread_rejected(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b"))
        g.add_dependency(b, a)
        with pytest.raises(GraphConsistencyError):
            g.validate()

    def test_cross_thread_cycle_detected(self):
        g = DependencyGraph()
        a = g.append(make_task("a", thread=cpu_thread(0)))
        b = g.append(make_task("b", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        g.add_dependency(a, b)
        g.add_dependency(b, a)
        with pytest.raises(GraphConsistencyError):
            g.validate()

    def test_valid_graph_passes(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        g.add_dependency(a, b)
        g.validate()

    def test_unordered_thread_allows_any_edge_direction(self):
        g = DependencyGraph()
        ch = comm_channel(0)
        g.mark_unordered(ch)
        a = g.append(make_task("a", thread=ch, kind=TaskKind.COMM))
        b = g.append(make_task("b", thread=ch, kind=TaskKind.COMM))
        g.add_dependency(b, a)  # against insertion order: fine when unordered
        g.validate()


class TestGraphCopy:
    def test_copy_is_deep(self):
        g = DependencyGraph()
        a = g.append(make_task("a", duration=5.0))
        clone = g.copy()
        clone.tasks()[0].duration = 99.0
        assert a.duration == 5.0

    def test_copy_preserves_edges(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        g.add_dependency(a, b)
        clone = g.copy()
        ca, cb = clone.tasks_on(cpu_thread(0))[0], clone.tasks_on(gpu_stream(0))[0]
        assert cb in clone.successors(ca)

    def test_copy_remaps_task_valued_metadata(self):
        g = DependencyGraph()
        a = g.append(make_task("launch"))
        b = g.append(make_task("kernel", thread=gpu_stream(0),
                               kind=TaskKind.GPU_KERNEL))
        a.metadata["launches"] = b
        b.metadata["launched_by"] = a
        clone = g.copy()
        ca = clone.tasks_on(cpu_thread(0))[0]
        cb = clone.tasks_on(gpu_stream(0))[0]
        assert ca.metadata["launches"] is cb
        assert cb.metadata["launched_by"] is ca

    def test_copy_preserves_unordered_marks(self):
        g = DependencyGraph()
        g.mark_unordered(comm_channel(0))
        g.append(make_task("c", thread=comm_channel(0), kind=TaskKind.COMM))
        assert not g.copy().is_ordered(comm_channel(0))
