"""Lifecycle management of the persistent sweep store.

PR 3 made the store durable and trustworthy; these tests pin the layer
that keeps it *bounded*: LRU eviction to a byte budget (the ``last_served``
sidecar is the clock), wholesale pruning of rotated-out salt generations,
corrupt-entry cleanup, the self-bounding ``max_bytes`` cap, and the
``repro store`` CLI fronting all of it.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import (
    OptimizationRegistry,
    OptimizationSpec,
    Scenario,
    SweepStore,
    store_salt,
)

VALUES = {"baseline_us": 100.0, "predicted_us": 90.0}


def scenario(batch_size):
    return Scenario(model="resnet50", batch_size=batch_size,
                    optimizations=["amp"])


def fill(store, n, start=1):
    """Write n entries and age their LRU clocks oldest-first."""
    keys = []
    for i in range(start, start + n):
        keys.append(store.put(scenario(i), VALUES))
    for age, key in enumerate(keys):
        stamp = 1_000_000 + age  # strictly increasing, far in the past
        os.utime(store.served_path_for(key), (stamp, stamp))
    return keys


def other_registry():
    registry = OptimizationRegistry()
    registry.register(OptimizationSpec(
        key="amp", factory=AutomaticMixedPrecision,
        summary="different schema, different salt"))
    return registry


# ------------------------------------------------------------------ accounting

def test_total_bytes_counts_entries_and_sidecars(tmp_path):
    store = SweepStore(str(tmp_path))
    assert store.total_bytes() == 0
    key = store.put(scenario(1), VALUES)
    expected = os.path.getsize(store.path_for(key)) \
        + os.path.getsize(store.served_path_for(key))
    assert store.total_bytes() == expected


def test_get_touches_the_last_served_sidecar(tmp_path):
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    sidecar = store.served_path_for(key)
    os.utime(sidecar, (1_000_000, 1_000_000))
    before = store.last_served(key)
    assert store.get(scenario(1)) == VALUES
    assert store.last_served(key) > before


# -------------------------------------------------------------------------- gc

def test_gc_evicts_least_recently_served_first(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 4)
    # serve the oldest entry so it becomes the newest
    assert store.get(scenario(1)) == VALUES
    entry_size = store._entry_bytes(keys[0])
    report = store.gc(max_bytes=2 * entry_size)
    assert report.evicted == 2
    # keys[1] and keys[2] were the least recently served
    survivors = set(store.keys())
    assert keys[0] in survivors and keys[3] in survivors
    assert keys[1] not in survivors and keys[2] not in survivors
    assert report.bytes_after <= 2 * entry_size
    assert store.stats.evicted == 2


def test_gc_without_budget_only_removes_dead_entries(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 3)
    with open(store.path_for(keys[0]), "w") as f:
        f.write("not json")
    report = store.gc()
    assert report.corrupt_removed == 1 and report.evicted == 0
    assert len(store) == 2


def test_gc_removes_stale_salt_generations(tmp_path):
    old = SweepStore(str(tmp_path), registry=other_registry())
    old_key = old.put(scenario(1), VALUES)
    current = SweepStore(str(tmp_path))
    current_key = current.put(scenario(1), VALUES)
    assert old_key != current_key
    report = current.gc()
    assert report.stale_removed == 1 and report.corrupt_removed == 0
    assert list(current.keys()) == [current_key]


def test_gc_bounds_an_over_cap_store(tmp_path):
    store = SweepStore(str(tmp_path))
    fill(store, 6)
    budget = store.total_bytes() // 2
    report = store.gc(max_bytes=budget)
    assert report.evicted >= 3
    assert store.total_bytes() <= budget
    # the survivors still serve
    assert store.get(scenario(6)) == VALUES


def test_gc_removes_abandoned_tmp_files_but_spares_young_ones(tmp_path):
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    shard = os.path.dirname(store.path_for(key))
    old_tmp = os.path.join(shard, ".deadbeef-crashed.tmp")
    young_tmp = os.path.join(shard, ".cafecafe-racing.tmp")
    for path in (old_tmp, young_tmp):
        with open(path, "w") as f:
            f.write("{")
    os.utime(old_tmp, (1_000_000, 1_000_000))
    report = store.gc()
    assert report.tmp_removed == 1
    assert not os.path.exists(old_tmp)
    assert os.path.exists(young_tmp)  # a writer may still replace it


# ----------------------------------------------------------------------- prune

def test_prune_keeps_only_the_current_generation(tmp_path):
    old = SweepStore(str(tmp_path), registry=other_registry())
    old.put(scenario(1), VALUES)
    old.put(scenario(2), VALUES)
    current = SweepStore(str(tmp_path))
    kept = current.put(scenario(1), VALUES)
    report = current.prune()
    assert report.stale_removed == 2
    assert list(current.keys()) == [kept]


def test_prune_with_explicit_salt_keeps_that_generation(tmp_path):
    old_registry = other_registry()
    old = SweepStore(str(tmp_path), registry=old_registry)
    old_key = old.put(scenario(1), VALUES)
    current = SweepStore(str(tmp_path))
    current.put(scenario(1), VALUES)
    report = current.prune(keep_salt=store_salt(old_registry))
    assert report.stale_removed == 1
    assert list(current.keys()) == [old_key]


def test_prune_drops_format_mismatched_entries(tmp_path):
    # format is outside the checksum, so a version-skewed entry can be
    # internally consistent yet unservable; prune must not keep it
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    path = store.path_for(key)
    with open(path) as f:
        payload = json.load(f)
    payload["format"] = 999
    with open(path, "w") as f:
        json.dump(payload, f)
    report = store.prune()
    assert report.stale_removed == 1
    assert len(store) == 0


def test_prune_drops_corrupt_entries_of_unknown_generation(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 2)
    with open(store.path_for(keys[0]), "wb") as f:
        f.write(b"\x00garbage")
    report = store.prune()
    assert report.corrupt_removed == 1 and report.stale_removed == 0
    assert list(store.keys()) == [keys[1]]


# ---------------------------------------------------------------------- verify

def test_verify_classifies_live_stale_and_corrupt(tmp_path):
    old = SweepStore(str(tmp_path), registry=other_registry())
    stale_key = old.put(scenario(1), VALUES)
    store = SweepStore(str(tmp_path))
    live_key = store.put(scenario(1), VALUES)
    corrupt_key = store.put(scenario(2), VALUES)
    with open(store.path_for(corrupt_key), "w") as f:
        f.write("} not json {")
    report = store.verify()
    assert report.live == [live_key] or set(report.live) == {live_key}
    assert report.stale == [stale_key]
    assert report.corrupt == [corrupt_key]
    assert not report.ok
    # verify mutated nothing
    assert len(store) == 3


# --------------------------------------------------------------- max_bytes cap

def test_put_auto_gcs_past_the_cap(tmp_path):
    probe = SweepStore(str(tmp_path / "probe"))
    entry_size = probe._entry_bytes(probe.put(scenario(1), VALUES))

    store = SweepStore(str(tmp_path / "capped"),
                       max_bytes=3 * entry_size + entry_size // 2)
    for i in range(1, 7):
        store.put(scenario(i), VALUES)
    assert store.total_bytes() <= store.max_bytes
    assert len(store) < 6
    assert store.stats.evicted > 0
    # the newest write always survives its own cap check
    assert store.get(scenario(6)) == VALUES


def test_overwrites_do_not_inflate_the_cap_estimate(tmp_path):
    # a force-style re-sweep replaces bytes rather than adding them; the
    # running estimate must track the true on-disk total, not the write
    # count (else every put past the phantom cap pays a full gc scan)
    store = SweepStore(str(tmp_path), max_bytes=100_000)
    for _ in range(50):
        store.put(scenario(1), VALUES)
    assert len(store) == 1
    assert store.stats.evicted == 0
    assert store._approx_bytes == store.total_bytes()


def test_non_positive_cap_is_rejected(tmp_path):
    from repro.common.errors import ConfigError
    with pytest.raises(ConfigError):
        SweepStore(str(tmp_path), max_bytes=0)


# ------------------------------------------------------------------- store CLI

def run_cli(*argv):
    return main(list(argv))


def test_cli_stats_and_verify(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = SweepStore(root)
    store.put(scenario(1), VALUES)
    assert run_cli("store", "stats", root) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1 and payload["live"] == 1
    assert payload["salt"] == store_salt(store.registry)

    assert run_cli("store", "verify", root) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"] == 1 and payload["corrupt"] == 0


def test_cli_gc_max_bytes_bounds_the_store(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = SweepStore(root)
    fill(store, 5)
    budget = store.total_bytes() // 2
    assert run_cli("store", "gc", root, "--max-bytes", str(budget)) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["evicted"] >= 2
    assert payload["bytes_after"] <= budget
    assert SweepStore(root).total_bytes() <= budget


def test_cli_verify_exits_nonzero_on_corruption(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = SweepStore(root)
    key = store.put(scenario(1), VALUES)
    with open(store.path_for(key), "w") as f:
        f.write("junk")
    assert run_cli("store", "verify", root) == 1
    out = capsys.readouterr()
    assert json.loads(out.out)["corrupt"] == 1

    # gc cleans it; verify is then green
    assert run_cli("store", "gc", root) == 0
    capsys.readouterr()
    assert run_cli("store", "verify", root) == 0


def test_cli_prune_drops_other_generations(tmp_path, capsys):
    root = str(tmp_path / "store")
    old = SweepStore(root, registry=other_registry())
    old.put(scenario(1), VALUES)
    SweepStore(root).put(scenario(1), VALUES)
    assert run_cli("store", "prune", root) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stale_removed"] == 1
    assert len(SweepStore(root)) == 1
