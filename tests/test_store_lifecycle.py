"""Lifecycle management of the persistent sweep store.

PR 3 made the store durable and trustworthy; these tests pin the layer
that keeps it *bounded*: LRU eviction to a byte budget (the ``last_served``
sidecar is the clock), wholesale pruning of rotated-out salt generations,
corrupt-entry cleanup, the self-bounding ``max_bytes`` cap, and the
``repro store`` CLI fronting all of it.  Since the lease layer landed,
the byte budget is also *exact under concurrency*: ``gc(max_bytes=)``
re-scans under the store-wide GC lease until the budget truly holds, so
a racing writer can delay a collection but never leave the pass
over-budget — stress-tested here thread-against-thread and
process-against-process — and per-key compute leases let two concurrent
sweeps dedupe identical cells instead of simulating them twice.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from helpers import make_tiny_model
from repro.__main__ import main
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import (
    OptimizationRegistry,
    OptimizationSpec,
    Scenario,
    ScenarioRunner,
    SweepStore,
    run_batch,
    store_salt,
)

VALUES = {"baseline_us": 100.0, "predicted_us": 90.0}


def scenario(batch_size):
    return Scenario(model="resnet50", batch_size=batch_size,
                    optimizations=["amp"])


def fill(store, n, start=1):
    """Write n entries and age their LRU clocks oldest-first."""
    keys = []
    for i in range(start, start + n):
        keys.append(store.put(scenario(i), VALUES))
    for age, key in enumerate(keys):
        stamp = 1_000_000 + age  # strictly increasing, far in the past
        os.utime(store.served_path_for(key), (stamp, stamp))
    return keys


def other_registry():
    registry = OptimizationRegistry()
    registry.register(OptimizationSpec(
        key="amp", factory=AutomaticMixedPrecision,
        summary="different schema, different salt"))
    return registry


# ------------------------------------------------------------------ accounting

def test_total_bytes_counts_entries_and_sidecars(tmp_path):
    store = SweepStore(str(tmp_path))
    assert store.total_bytes() == 0
    key = store.put(scenario(1), VALUES)
    expected = os.path.getsize(store.path_for(key)) \
        + os.path.getsize(store.served_path_for(key))
    assert store.total_bytes() == expected


def test_get_touches_the_last_served_sidecar(tmp_path):
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    sidecar = store.served_path_for(key)
    os.utime(sidecar, (1_000_000, 1_000_000))
    before = store.last_served(key)
    assert store.get(scenario(1)) == VALUES
    assert store.last_served(key) > before


# -------------------------------------------------------------------------- gc

def test_gc_evicts_least_recently_served_first(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 4)
    # serve the oldest entry so it becomes the newest
    assert store.get(scenario(1)) == VALUES
    entry_size = store._entry_bytes(keys[0])
    report = store.gc(max_bytes=2 * entry_size)
    assert report.evicted == 2
    # keys[1] and keys[2] were the least recently served
    survivors = set(store.keys())
    assert keys[0] in survivors and keys[3] in survivors
    assert keys[1] not in survivors and keys[2] not in survivors
    assert report.bytes_after <= 2 * entry_size
    assert store.stats.evicted == 2


def test_gc_without_budget_only_removes_dead_entries(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 3)
    with open(store.path_for(keys[0]), "w") as f:
        f.write("not json")
    report = store.gc()
    assert report.corrupt_removed == 1 and report.evicted == 0
    assert len(store) == 2


def test_gc_removes_stale_salt_generations(tmp_path):
    old = SweepStore(str(tmp_path), registry=other_registry())
    old_key = old.put(scenario(1), VALUES)
    current = SweepStore(str(tmp_path))
    current_key = current.put(scenario(1), VALUES)
    assert old_key != current_key
    report = current.gc()
    assert report.stale_removed == 1 and report.corrupt_removed == 0
    assert list(current.keys()) == [current_key]


def test_gc_bounds_an_over_cap_store(tmp_path):
    store = SweepStore(str(tmp_path))
    fill(store, 6)
    budget = store.total_bytes() // 2
    report = store.gc(max_bytes=budget)
    assert report.evicted >= 3
    assert store.total_bytes() <= budget
    # the survivors still serve
    assert store.get(scenario(6)) == VALUES


def test_gc_removes_abandoned_tmp_files_but_spares_young_ones(tmp_path):
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    shard = os.path.dirname(store.path_for(key))
    old_tmp = os.path.join(shard, ".deadbeef-crashed.tmp")
    young_tmp = os.path.join(shard, ".cafecafe-racing.tmp")
    for path in (old_tmp, young_tmp):
        with open(path, "w") as f:
            f.write("{")
    os.utime(old_tmp, (1_000_000, 1_000_000))
    report = store.gc()
    assert report.tmp_removed == 1
    assert not os.path.exists(old_tmp)
    assert os.path.exists(young_tmp)  # a writer may still replace it


# ----------------------------------------------------------------------- prune

def test_prune_keeps_only_the_current_generation(tmp_path):
    old = SweepStore(str(tmp_path), registry=other_registry())
    old.put(scenario(1), VALUES)
    old.put(scenario(2), VALUES)
    current = SweepStore(str(tmp_path))
    kept = current.put(scenario(1), VALUES)
    report = current.prune()
    assert report.stale_removed == 2
    assert list(current.keys()) == [kept]


def test_prune_with_explicit_salt_keeps_that_generation(tmp_path):
    old_registry = other_registry()
    old = SweepStore(str(tmp_path), registry=old_registry)
    old_key = old.put(scenario(1), VALUES)
    current = SweepStore(str(tmp_path))
    current.put(scenario(1), VALUES)
    report = current.prune(keep_salt=store_salt(old_registry))
    assert report.stale_removed == 1
    assert list(current.keys()) == [old_key]


def test_prune_drops_format_mismatched_entries(tmp_path):
    # format is outside the checksum, so a version-skewed entry can be
    # internally consistent yet unservable; prune must not keep it
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    path = store.path_for(key)
    with open(path) as f:
        payload = json.load(f)
    payload["format"] = 999
    with open(path, "w") as f:
        json.dump(payload, f)
    report = store.prune()
    assert report.stale_removed == 1
    assert len(store) == 0


def test_prune_drops_corrupt_entries_of_unknown_generation(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 2)
    with open(store.path_for(keys[0]), "wb") as f:
        f.write(b"\x00garbage")
    report = store.prune()
    assert report.corrupt_removed == 1 and report.stale_removed == 0
    assert list(store.keys()) == [keys[1]]


# ---------------------------------------------------------------------- verify

def test_verify_classifies_live_stale_and_corrupt(tmp_path):
    old = SweepStore(str(tmp_path), registry=other_registry())
    stale_key = old.put(scenario(1), VALUES)
    store = SweepStore(str(tmp_path))
    live_key = store.put(scenario(1), VALUES)
    corrupt_key = store.put(scenario(2), VALUES)
    with open(store.path_for(corrupt_key), "w") as f:
        f.write("} not json {")
    report = store.verify()
    assert report.live == [live_key] or set(report.live) == {live_key}
    assert report.stale == [stale_key]
    assert report.corrupt == [corrupt_key]
    assert not report.ok
    # verify mutated nothing
    assert len(store) == 3


# --------------------------------------------------------------- max_bytes cap

def test_put_auto_gcs_past_the_cap(tmp_path):
    probe = SweepStore(str(tmp_path / "probe"))
    entry_size = probe._entry_bytes(probe.put(scenario(1), VALUES))

    store = SweepStore(str(tmp_path / "capped"),
                       max_bytes=3 * entry_size + entry_size // 2)
    for i in range(1, 7):
        store.put(scenario(i), VALUES)
    assert store.total_bytes() <= store.max_bytes
    assert len(store) < 6
    assert store.stats.evicted > 0
    # the newest write always survives its own cap check
    assert store.get(scenario(6)) == VALUES


def test_overwrites_do_not_inflate_the_cap_estimate(tmp_path):
    # a force-style re-sweep replaces bytes rather than adding them; the
    # running estimate must track the true on-disk total, not the write
    # count (else every put past the phantom cap pays a full gc scan)
    store = SweepStore(str(tmp_path), max_bytes=100_000)
    for _ in range(50):
        store.put(scenario(1), VALUES)
    assert len(store) == 1
    assert store.stats.evicted == 0
    assert store._approx_bytes == store.total_bytes()


def test_non_positive_cap_is_rejected(tmp_path):
    from repro.common.errors import ConfigError
    with pytest.raises(ConfigError):
        SweepStore(str(tmp_path), max_bytes=0)


# ------------------------------------------------------- leases and exactness

def test_put_releases_its_key_lease(tmp_path):
    store = SweepStore(str(tmp_path))
    key = store.put(scenario(1), VALUES)
    assert not os.path.exists(store.local.lease_path_for(key))


def test_put_under_a_held_lease_neither_waits_nor_releases(tmp_path):
    # the batch executor holds a cell's compute lease across put: the
    # write must ride it (not stall PUT_LEASE_WAIT_SECONDS on its own
    # lock) and must leave the release to the caller
    store = SweepStore(str(tmp_path))
    key = store.key(scenario(1))
    lease = store.lease(key)
    assert lease.try_acquire()
    start = time.monotonic()
    store.put(scenario(1), VALUES, lease=lease)
    elapsed = time.monotonic() - start
    assert elapsed < 0.4, f"put stalled {elapsed:.2f}s on its own lease"
    assert lease.owned  # still ours to release
    assert os.path.exists(store.local.lease_path_for(key))
    lease.release()
    assert store.get(scenario(1)) == VALUES


def test_gc_spares_entries_with_a_fresh_lease(tmp_path):
    store = SweepStore(str(tmp_path))
    keys = fill(store, 3)
    # the oldest-served entry would evict first, but a live writer owns it
    lease = store.lease(keys[0])
    assert lease.try_acquire()
    try:
        report = store.gc(max_bytes=store._entry_bytes(keys[1]))
        survivors = set(store.keys())
        assert keys[0] in survivors
        assert report.evicted == 2
        assert report.bytes_after <= store._entry_bytes(keys[0])
    finally:
        lease.release()


def test_gc_budget_holds_under_a_racing_writer_thread(tmp_path):
    """The ROADMAP advisory-cap bug, pinned: eviction interleaved with a
    racing writer used to overshoot the budget (the single scan missed
    entries landed mid-pass); the rescan loop under the GC lease must
    not."""
    store = SweepStore(str(tmp_path))
    keys = fill(store, 6)
    entry_size = store._entry_bytes(keys[0])
    budget = 3 * entry_size + entry_size // 2

    def write_24_entries():
        writer = SweepStore(str(tmp_path))
        for i in range(500, 524):
            writer.put(scenario(i), VALUES)
            time.sleep(0.001)

    thread = threading.Thread(target=write_24_entries)
    thread.start()
    try:
        reports = [store.gc(max_bytes=budget) for _ in range(5)]
    finally:
        thread.join()
    for report in reports:
        assert report.bytes_after <= budget
    # at quiescence one more pass leaves the store within budget for good
    assert store.gc(max_bytes=budget).bytes_after <= budget
    assert store.total_bytes() <= budget


def _stress_writer(root, start, count):
    """Subprocess body: hammer the store with fresh entries."""
    writer = SweepStore(root)
    for i in range(start, start + count):
        writer.put(scenario(i), VALUES)
        time.sleep(0.002)


def _stress_gc(root, budget, rounds, queue):
    """Subprocess body: run repeated budgeted GC passes, report totals."""
    store = SweepStore(root)
    for _ in range(rounds):
        report = store.gc(max_bytes=budget)
        queue.put(report.bytes_after)
        time.sleep(0.003)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method")
def test_gc_budget_is_exact_across_processes(tmp_path):
    """Two real processes — a writer and a collector — race on one store.

    Every ``gc(max_bytes=)`` return must report a within-budget total
    (measured by its own rescan under the GC lease), and once the writer
    exits, a final pass must leave the whole store within budget.
    """
    root = str(tmp_path / "store")
    store = SweepStore(root)
    keys = fill(store, 4)
    entry_size = store._entry_bytes(keys[0])
    budget = 3 * entry_size + entry_size // 2

    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    writer = ctx.Process(target=_stress_writer, args=(root, 100, 24))
    collector = ctx.Process(target=_stress_gc,
                            args=(root, budget, 8, queue))
    writer.start()
    collector.start()
    writer.join(timeout=60)
    collector.join(timeout=60)
    assert writer.exitcode == 0 and collector.exitcode == 0

    totals = [queue.get() for _ in range(8)]
    assert all(total <= budget for total in totals), totals
    final = SweepStore(root).gc(max_bytes=budget)
    assert final.bytes_after <= budget
    assert SweepStore(root).total_bytes() <= budget


# --------------------------------------------------------- cross-sweep dedupe

TINY = "tinylease"


def build_tinylease(batch_size=None):
    """Module-level builder so workers can re-import it by name."""
    return make_tiny_model(batch=batch_size or 4)


@pytest.fixture
def tiny_model():
    try:
        register_model(TINY, build_tinylease)
    except ConfigError:
        pass  # an earlier test in this process already registered it


def test_deferred_cell_is_served_from_the_winning_sweep(tmp_path,
                                                        tiny_model):
    """While another sweep holds a cell's compute lease, this sweep must
    wait it out and serve the winner's entry instead of simulating."""
    store = SweepStore(str(tmp_path / "store"))
    cell = Scenario(model=TINY)
    key = store.key(cell)
    winner = store.lease(key)
    assert winner.try_acquire()

    reference = ScenarioRunner().run(cell)

    def publish_and_release():
        time.sleep(0.15)
        store.put(cell, {"baseline_us": reference.baseline_us,
                         "predicted_us": reference.predicted_us})
        winner.release()

    thread = threading.Thread(target=publish_and_release)
    thread.start()
    try:
        report = run_batch([cell], store=store)
    finally:
        thread.join()
    assert report.hits == 1 and report.computed == 0
    (served,) = report.cells
    assert served.cached
    assert served.baseline_us == reference.baseline_us
    assert served.predicted_us == reference.predicted_us


def test_stale_compute_lease_is_inherited_not_waited_on(tmp_path,
                                                        tiny_model):
    """A crashed sweep's abandoned lease must not block the grid: the
    claim steals it (stale-after) and computes the cell itself."""
    store = SweepStore(str(tmp_path / "store"))
    cell = Scenario(model=TINY)
    key = store.key(cell)
    lease_path = store.local.lease_path_for(key)
    os.makedirs(os.path.dirname(lease_path), exist_ok=True)
    with open(lease_path, "w") as f:
        f.write("1:crashed-long-ago")
    os.utime(lease_path, (1_000_000, 1_000_000))

    report = run_batch([cell], store=store)
    assert report.computed == 1 and report.hits == 0
    assert store.contains(cell)
    assert not os.path.exists(lease_path)  # released after the write


def test_record_releases_the_lease_even_when_put_fails(tmp_path,
                                                       tiny_model,
                                                       monkeypatch):
    """A failing store write (disk full) must not leak the cell's
    compute lease — a leaked claim stalls the next sweep over that cell
    for the whole steal window."""
    store = SweepStore(str(tmp_path / "store"))
    cell = Scenario(model=TINY)

    def disk_full(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(store, "put", disk_full)
    with pytest.raises(OSError):
        run_batch([cell], store=store, jobs=1)
    assert not os.path.exists(store.local.lease_path_for(store.key(cell)))


SLOW = "tinyslowlease"


def build_tinyslowlease(batch_size=None):
    """Module-level builder whose profile is deliberately slow."""
    time.sleep(0.6)
    return make_tiny_model(batch=batch_size or 4)


def test_claims_stay_fresh_through_a_chunk_longer_than_the_steal_window(
        tmp_path, monkeypatch):
    """A single chunk can legitimately outlast LEASE_STEAL_SECONDS; the
    background refresher must keep the claim un-stealable the whole
    time, or a concurrent sweep duplicates the cell."""
    import repro.scenarios.backends as backends_mod
    from repro.scenarios import FileLease

    monkeypatch.setattr(backends_mod, "LEASE_STEAL_SECONDS", 0.05)
    try:
        register_model(SLOW, build_tinyslowlease)
    except ConfigError:
        pass
    store = SweepStore(str(tmp_path / "store"))
    cell = Scenario(model=SLOW)
    key = store.key(cell)

    result = {}

    def sweep():
        result["report"] = run_batch([cell], store=store, jobs=1)

    thread = threading.Thread(target=sweep)
    thread.start()
    try:
        time.sleep(0.25)  # several steal windows into the computation
        assert thread.is_alive()  # the slow chunk is still running
        thief = FileLease(store.local.lease_path_for(key),
                          steal_after=0.05)
        stolen = thief.try_acquire()
    finally:
        thread.join()
    assert not stolen, "a refreshed claim was stolen mid-chunk"
    assert result["report"].computed == 1


def test_inherited_cell_keeps_its_lease_fresh_while_computing(
        tmp_path, monkeypatch):
    """The deferred-inherit path (winner died without publishing) runs
    the computation in-process; its claim must be refreshed on a time
    cadence just like normal chunks, or a third sweep steals it."""
    import repro.scenarios.backends as backends_mod
    from repro.scenarios import FileLease

    monkeypatch.setattr(backends_mod, "LEASE_STEAL_SECONDS", 0.05)
    try:
        register_model(SLOW, build_tinyslowlease)
    except ConfigError:
        pass
    store = SweepStore(str(tmp_path / "store"))
    cell = Scenario(model=SLOW)
    key = store.key(cell)
    winner = store.lease(key)  # a sweep that will die without publishing
    assert winner.try_acquire()

    result = {}

    def sweep():
        result["report"] = run_batch([cell], store=store, jobs=1)

    thread = threading.Thread(target=sweep)
    thread.start()
    try:
        time.sleep(0.1)
        winner.release()  # the winner "crashes": no entry ever lands
        time.sleep(0.3)   # the inheritor is now mid-computation
        assert thread.is_alive()
        thief = FileLease(store.local.lease_path_for(key),
                          steal_after=0.05)
        stolen = thief.try_acquire()
    finally:
        thread.join()
    assert not stolen, "an inherited, refreshed claim was stolen"
    assert result["report"].computed == 1
    assert store.contains(cell)


def test_failed_sweep_releases_its_claims(tmp_path, tiny_model):
    """Leases must not leak when a cell blows up mid-sweep.

    A failing cell no longer aborts the batch: it is reported in
    ``BatchReport.failures`` while the healthy cells keep their rows —
    and every claim, failed or not, is released by the time the report
    returns (``tests/test_crash_recovery.py`` covers the crashed-pool
    variants of this).
    """
    store = SweepStore(str(tmp_path / "store"))
    cells = [Scenario(model=TINY), Scenario(model="no-such-model")]
    report = run_batch(cells, store=store, jobs=1)
    assert report.failed == 1
    assert [c.scenario.model for c in report.cells] == [TINY]
    for cell in cells:
        lease_path = store.local.lease_path_for(store.key(cell))
        assert not os.path.exists(lease_path)


# ------------------------------------------------------------------- store CLI

def run_cli(*argv):
    return main(list(argv))


def test_cli_stats_and_verify(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = SweepStore(root)
    store.put(scenario(1), VALUES)
    assert run_cli("store", "stats", root) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1 and payload["live"] == 1
    assert payload["salt"] == store_salt(store.registry)

    assert run_cli("store", "verify", root) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"] == 1 and payload["corrupt"] == 0


def test_cli_gc_max_bytes_bounds_the_store(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = SweepStore(root)
    fill(store, 5)
    budget = store.total_bytes() // 2
    assert run_cli("store", "gc", root, "--max-bytes", str(budget)) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["evicted"] >= 2
    assert payload["bytes_after"] <= budget
    assert SweepStore(root).total_bytes() <= budget


def test_cli_verify_exits_nonzero_on_corruption(tmp_path, capsys):
    root = str(tmp_path / "store")
    store = SweepStore(root)
    key = store.put(scenario(1), VALUES)
    with open(store.path_for(key), "w") as f:
        f.write("junk")
    assert run_cli("store", "verify", root) == 1
    out = capsys.readouterr()
    assert json.loads(out.out)["corrupt"] == 1

    # gc cleans it; verify is then green
    assert run_cli("store", "gc", root) == 0
    capsys.readouterr()
    assert run_cli("store", "verify", root) == 0


def test_cli_prune_drops_other_generations(tmp_path, capsys):
    root = str(tmp_path / "store")
    old = SweepStore(root, registry=other_registry())
    old.put(scenario(1), VALUES)
    SweepStore(root).put(scenario(1), VALUES)
    assert run_cli("store", "prune", root) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stale_removed"] == 1
    assert len(SweepStore(root)) == 1
