"""Tests for the fixed-width table renderer."""

import pytest

from repro.common.texttable import format_cell, render_table


class TestFormatCell:
    def test_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_thousands_separator(self):
        assert format_cell(1234567.0) == "1,234,567.00"

    def test_ints_and_strings_verbatim(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "22.25" in out

    def test_title_rule(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1].startswith("=")

    def test_numbers_right_aligned(self):
        out = render_table(["n"], [[5], [12345]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("12345")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_percent_counts_as_numeric(self):
        out = render_table(["gain"], [["+5.0%"]])
        assert "+5.0%" in out
