"""Tests for repro.hw.device."""

import pytest

from repro.common.errors import ConfigError
from repro.hw.device import (
    CPU_EPYC_7601,
    GPU_2080TI,
    GPU_P4000,
    GPU_V100,
    GPUSpec,
    get_gpu,
)


class TestGPUSpecs:
    def test_2080ti_preset(self):
        assert GPU_2080TI.memory_gb == 11.0
        assert GPU_2080TI.has_tensor_cores

    def test_p4000_has_no_tensor_cores(self):
        assert not GPU_P4000.has_tensor_cores

    def test_achieved_below_peak(self):
        peak = GPU_2080TI.fp32_tflops * 1e12 / 1e6
        assert GPU_2080TI.achieved_flops_per_us("fp32") < peak

    def test_fp16_faster_with_tensor_cores(self):
        assert (GPU_2080TI.achieved_flops_per_us("fp16")
                > GPU_2080TI.achieved_flops_per_us("fp32"))

    def test_fp16_marginal_without_tensor_cores(self):
        ratio = (GPU_P4000.achieved_flops_per_us("fp16")
                 / GPU_P4000.achieved_flops_per_us("fp32"))
        assert ratio < 1.5

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigError):
            GPU_2080TI.achieved_flops_per_us("int8")

    def test_memory_bandwidth_conversion(self):
        # 616 GB/s * 0.78 efficiency ~ 480k bytes/us
        assert GPU_2080TI.achieved_bytes_per_us() == pytest.approx(
            616e9 * 0.78 / 1e6)

    def test_pcie_below_memory_bandwidth(self):
        assert GPU_2080TI.pcie_bytes_per_us() < GPU_2080TI.achieved_bytes_per_us()

    def test_scaled_gpu(self):
        fast = GPU_2080TI.scaled(2.0)
        assert fast.fp32_tflops == pytest.approx(2 * GPU_2080TI.fp32_tflops)
        assert fast.memory_bandwidth_gBps == pytest.approx(
            2 * GPU_2080TI.memory_bandwidth_gBps)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            GPU_2080TI.scaled(0.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(name="bad", fp32_tflops=1, fp16_tflops=1,
                    memory_bandwidth_gBps=1, memory_gb=1,
                    compute_efficiency=1.5)

    def test_nonpositive_throughput_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(name="bad", fp32_tflops=0, fp16_tflops=1,
                    memory_bandwidth_gBps=1, memory_gb=1)


class TestGetGpu:
    def test_lookup_variants(self):
        assert get_gpu("2080ti") is GPU_2080TI
        assert get_gpu("P4000") is GPU_P4000
        assert get_gpu("v-100") is GPU_V100

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_gpu("tpu-v4")


class TestCPUSpec:
    def test_defaults_positive(self):
        cpu = CPU_EPYC_7601
        assert cpu.launch_api_us > 0
        assert cpu.dispatch_gap_us > 0
        assert cpu.optimizer_gap_us > 0
