"""The unified retry policy: one backoff shape, reproducible to the digit.

Every transient-fault path — the HTTP remote tier's down-window, ``store
push``/``pull`` transfer retries, the batch executor's crashed-cell
budget — now shares :class:`repro.scenarios.RetryPolicy`.  That only
works if the policy itself is boringly predictable: exponential growth
with caps, jitter that is a pure function of (seed, attempt) rather than
an RNG, a deadline that refuses sleeps it cannot afford, and JSON
round-tripping that rejects typos instead of defaulting them away.
"""

import pytest

from repro.common.errors import ConfigError
from repro.scenarios import BackoffState, RetryPolicy, no_retry
from repro.scenarios.retry import sync_retry_policy


# ----------------------------------------------------------------- schedule

def test_delays_grow_geometrically_and_clamp():
    policy = RetryPolicy(max_attempts=6, base_delay_s=1.0, multiplier=2.0,
                         max_delay_s=5.0, jitter=0.0)
    assert policy.schedule() == (1.0, 2.0, 4.0, 5.0, 5.0)


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, multiplier=1.0,
                         jitter=0.25, seed=7)
    first = policy.schedule()
    assert first == policy.schedule()  # pure function, no RNG state
    for delay in first:
        assert 0.75 <= delay <= 1.25
    # jitter spreads attempts apart: not every delay collapses to nominal
    assert len(set(first)) > 1


def test_seeds_desynchronize_replicas():
    base = RetryPolicy(max_attempts=5, base_delay_s=1.0, jitter=0.5)
    assert base.schedule() != base.with_seed(99).schedule()


def test_invalid_shapes_are_rejected():
    for kwargs in ({"max_attempts": 0}, {"base_delay_s": -1.0},
                   {"multiplier": 0.5}, {"jitter": 1.0},
                   {"jitter": -0.1}, {"deadline_s": 0.0}):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)
    with pytest.raises(ConfigError):
        RetryPolicy().delay_for(0)


# --------------------------------------------------------------------- call

def test_call_retries_transient_errors_then_succeeds():
    attempts = []
    slept = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError("transient")
        return "ok"

    policy = RetryPolicy(max_attempts=4, base_delay_s=0.5, jitter=0.0)
    assert policy.call(flaky, retry_on=(OSError,),
                       sleep=slept.append) == "ok"
    assert len(attempts) == 3
    assert slept == [0.5, 1.0]  # the policy's own schedule, no real sleep


def test_call_reraises_after_max_attempts():
    attempts = []

    def always_fails():
        attempts.append(1)
        raise OSError("still down")

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
    with pytest.raises(OSError, match="still down"):
        policy.call(always_fails, retry_on=(OSError,), sleep=lambda _s: None)
    assert len(attempts) == 3


def test_call_propagates_unlisted_exceptions_immediately():
    attempts = []

    def wrong_kind():
        attempts.append(1)
        raise ValueError("not transient")

    policy = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)
    with pytest.raises(ValueError):
        policy.call(wrong_kind, retry_on=(OSError,), sleep=lambda _s: None)
    assert len(attempts) == 1


def test_deadline_refuses_sleeps_it_cannot_afford():
    attempts = []
    policy = RetryPolicy(max_attempts=50, base_delay_s=10.0, jitter=0.0,
                         deadline_s=5.0)

    def always_fails():
        attempts.append(1)
        raise OSError("down")

    # the first retry would sleep 10s against a 5s deadline: give up now
    with pytest.raises(OSError):
        policy.call(always_fails, retry_on=(OSError,), sleep=lambda _s: None)
    assert len(attempts) == 1


def test_on_retry_observer_sees_each_attempt():
    seen = []
    policy = RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter=0.0)

    def always_fails():
        raise OSError("down")

    with pytest.raises(OSError):
        policy.call(always_fails, retry_on=(OSError,),
                    sleep=lambda _s: None,
                    on_retry=lambda n, d, e: seen.append((n, d, str(e))))
    assert seen == [(1, 1.0, "down"), (2, 2.0, "down")]


# ------------------------------------------------------------- round-tripping

def test_dict_round_trip_is_lossless():
    policy = RetryPolicy(max_attempts=7, base_delay_s=0.3, multiplier=3.0,
                         max_delay_s=9.0, jitter=0.2, deadline_s=60.0,
                         seed=42)
    assert RetryPolicy.from_dict(policy.to_dict()) == policy


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="max_atempts"):
        RetryPolicy.from_dict({"max_atempts": 5})


# ------------------------------------------------------------------ helpers

def test_no_retry_is_a_single_attempt():
    attempts = []

    def always_fails():
        attempts.append(1)
        raise OSError("down")

    with pytest.raises(OSError):
        no_retry().call(always_fails, retry_on=(OSError,),
                        sleep=lambda _s: None)
    assert len(attempts) == 1


def test_sync_retry_policy_counts_extra_attempts():
    assert sync_retry_policy(retries=0).max_attempts == 1
    assert sync_retry_policy(retries=2).max_attempts == 3
    with pytest.raises(ConfigError):
        sync_retry_policy(retries=-1)


# ------------------------------------------------------------ backoff state

def test_backoff_escalates_then_saturates_then_resets():
    policy = RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0,
                         max_delay_s=100.0, jitter=0.0)
    state = BackoffState(policy=policy)
    state, w1 = state.after_failure()
    state, w2 = state.after_failure()
    state, w3 = state.after_failure()
    state, w4 = state.after_failure()
    assert (w1, w2, w3) == (1.0, 2.0, 4.0)
    assert w4 == w3  # streak saturates at max_attempts
    state = state.after_success()
    _, again = state.after_failure()
    assert again == w1  # one success clears the whole history
