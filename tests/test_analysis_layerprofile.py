"""Tests for per-layer time attribution (the layer-level profiler view)."""

import pytest

from repro.analysis.layerprofile import profile_layers
from repro.core.construction import build_graph
from repro.core.simulate import simulate


@pytest.fixture
def profiled(tiny_trace):
    graph = build_graph(tiny_trace)
    result = simulate(graph)
    return graph, result, profile_layers(graph, result)


class TestProfileLayers:
    def test_every_model_layer_has_forward_entry(self, tiny_model, profiled):
        _, _, profile = profiled
        for layer in tiny_model.layers:
            entry = profile.get(layer.name, "forward")
            assert entry.kernels == len(layer.forward_kernels), layer.name

    def test_backward_kernel_counts(self, tiny_model, profiled):
        _, _, profile = profiled
        for layer in tiny_model.layers:
            entry = profile.get(layer.name, "backward")
            assert entry.kernels == len(layer.backward_kernels), layer.name

    def test_gpu_time_partition(self, profiled):
        """Summed per-layer GPU time equals the mapped GPU task total."""
        graph, _, profile = profiled
        mapped_gpu = sum(t.duration for t in graph.tasks()
                         if t.is_gpu and t.layer is not None
                         and t.phase is not None)
        attributed = sum(p.gpu_us for p in profile.entries.values())
        assert attributed == pytest.approx(mapped_gpu)

    def test_cpu_includes_gaps(self, profiled):
        _, _, profile = profiled
        any_entry = next(iter(profile.entries.values()))
        # cpu_total >= cpu API time because gaps are added
        assert any_entry.cpu_total_us >= any_entry.cpu_us

    def test_top_layers_sorted(self, profiled):
        _, _, profile = profiled
        top = profile.top_layers(5)
        gpu_times = [p.gpu_us for p in top]
        assert gpu_times == sorted(gpu_times, reverse=True)

    def test_top_layers_phase_filter(self, profiled):
        _, _, profile = profiled
        fwd_only = profile.top_layers(100, phase="forward")
        assert fwd_only
        assert all(p.phase == "forward" for p in fwd_only)

    def test_unknown_layer_returns_zeros(self, profiled):
        _, _, profile = profiled
        entry = profile.get("nonexistent", "forward")
        assert entry.gpu_us == 0.0 and entry.kernels == 0

    def test_render(self, profiled):
        _, _, profile = profiled
        out = profile.render(5)
        assert "layer" in out and "gpu_ms" in out

    def test_layers_first_seen_order(self, profiled):
        _, _, profile = profiled
        layers = profile.layers()
        assert len(layers) == len(set(layers))
        assert "conv1" in layers

    def test_without_simulation_result(self, tiny_trace):
        graph = build_graph(tiny_trace)
        profile = profile_layers(graph)
        assert profile.entries
