"""Edge-case tests for graph construction on hand-built traces."""

import pytest

from repro.common.errors import TraceError
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.core.task import TaskKind
from repro.tracing.records import (
    EventCategory,
    TraceEvent,
    comm_channel,
    cpu_thread,
    gpu_stream,
)
from repro.tracing.trace import Trace


def ev(category, name, start, dur, thread, corr=None, meta=None):
    return TraceEvent(category=category, name=name, start_us=start,
                      duration_us=dur, thread=thread, correlation_id=corr,
                      metadata=meta or {})


class TestMinimalTraces:
    def test_single_cpu_event(self):
        trace = Trace(events=[ev(EventCategory.RUNTIME, "cudaFree", 0, 5,
                                 cpu_thread(0))])
        graph = build_graph(trace)
        assert len(graph) == 1
        assert simulate(graph).makespan_us == 5.0

    def test_launch_kernel_pair(self):
        trace = Trace(events=[
            ev(EventCategory.RUNTIME, "cudaLaunchKernel", 0, 2,
               cpu_thread(0), corr=1),
            ev(EventCategory.KERNEL, "my_kernel", 2, 10, gpu_stream(0),
               corr=1),
        ])
        graph = build_graph(trace)
        kernel = next(t for t in graph.tasks() if t.kind is TaskKind.GPU_KERNEL)
        launch = kernel.metadata["launched_by"]
        assert launch.name == "cudaLaunchKernel"
        assert simulate(graph).makespan_us == 12.0

    def test_orphan_gpu_kernel_rejected(self):
        trace = Trace(events=[
            ev(EventCategory.KERNEL, "orphan", 0, 10, gpu_stream(0), corr=7),
        ])
        with pytest.raises(TraceError):
            build_graph(trace)

    def test_marker_only_trace_rejected(self):
        trace = Trace(events=[TraceEvent(
            category=EventCategory.MARKER, name="l#forward", start_us=0,
            duration_us=1, thread=cpu_thread(0), layer="l", phase="forward")])
        with pytest.raises(TraceError):
            build_graph(trace)


class TestSyncSemantics:
    def _trace_with_sync(self, sync_duration):
        return Trace(events=[
            ev(EventCategory.RUNTIME, "cudaLaunchKernel", 0, 2,
               cpu_thread(0), corr=1),
            ev(EventCategory.KERNEL, "k", 2, 100, gpu_stream(0), corr=1),
            ev(EventCategory.RUNTIME, "cudaDeviceSynchronize", 2,
               sync_duration, cpu_thread(0)),
        ])

    def test_wait_rederived_not_replayed(self):
        """After a transform shrinks the kernel, the sync wait shrinks too —
        which only works because construction strips the measured wait."""
        graph = build_graph(self._trace_with_sync(sync_duration=100.0))
        kernel = next(t for t in graph.tasks() if t.is_gpu)
        kernel.duration = 10.0
        makespan = simulate(graph).makespan_us
        assert makespan < 30.0  # not 102+

    def test_sync_still_waits_for_gpu(self):
        graph = build_graph(self._trace_with_sync(sync_duration=100.0))
        sync = next(t for t in graph.tasks() if "Synchronize" in t.name)
        result = simulate(graph)
        kernel = next(t for t in graph.tasks() if t.is_gpu)
        assert result.start_us[sync] >= result.end_us(kernel) - 1e-9


class TestGapAttribution:
    def test_gap_between_cpu_tasks(self):
        trace = Trace(events=[
            ev(EventCategory.RUNTIME, "a", 0, 2, cpu_thread(0)),
            ev(EventCategory.RUNTIME, "b", 10, 3, cpu_thread(0)),
        ])
        graph = build_graph(trace)
        first = graph.tasks_on(cpu_thread(0))[0]
        assert first.gap == pytest.approx(8.0)
        assert simulate(graph).makespan_us == pytest.approx(13.0)

    def test_no_gap_on_gpu_tasks(self):
        trace = Trace(events=[
            ev(EventCategory.RUNTIME, "cudaLaunchKernel", 0, 1,
               cpu_thread(0), corr=1),
            ev(EventCategory.RUNTIME, "cudaLaunchKernel", 1, 1,
               cpu_thread(0), corr=2),
            ev(EventCategory.KERNEL, "k1", 1, 5, gpu_stream(0), corr=1),
            ev(EventCategory.KERNEL, "k2", 50, 5, gpu_stream(0), corr=2),
        ])
        graph = build_graph(trace)
        for task in graph.tasks():
            if task.is_gpu:
                assert task.gap == 0.0


class TestCommConstruction:
    def test_comm_event_becomes_comm_task(self):
        trace = Trace(events=[
            ev(EventCategory.RUNTIME, "cudaLaunchKernel", 0, 1,
               cpu_thread(0), corr=1),
            ev(EventCategory.KERNEL, "bwd_k", 1, 10, gpu_stream(0), corr=1),
            ev(EventCategory.COMM, "ncclAllReduce", 11, 40, comm_channel(0)),
        ])
        graph = build_graph(trace)
        comm = next(t for t in graph.tasks() if t.is_comm)
        preds = graph.predecessors(comm)
        assert any(p.is_gpu for p in preds)
        result = simulate(graph)
        assert result.makespan_us == pytest.approx(51.0)

    def test_foreign_trace_without_markers(self):
        """A trace from a profiler without Daydream instrumentation still
        constructs (just without layer mapping)."""
        trace = Trace(events=[
            ev(EventCategory.RUNTIME, "cudaLaunchKernel", 0, 1,
               cpu_thread(0), corr=1),
            ev(EventCategory.KERNEL, "k", 1, 5, gpu_stream(0), corr=1),
        ])
        graph = build_graph(trace, map_layers=True)
        assert all(t.layer is None for t in graph.tasks())
