"""Tests for the CPU/GPU runtime breakdown (Figure 6 machinery)."""

import pytest

from repro.core.breakdown import RuntimeBreakdown, compute_breakdown
from repro.core.construction import build_graph
from repro.core.graph import DependencyGraph
from repro.core.simulate import simulate
from repro.core.task import Task, TaskKind
from repro.framework.config import TrainingConfig
from repro.framework.engine import profile_iteration
from repro.tracing.records import cpu_thread, gpu_stream

from helpers import make_tiny_model


def cpu_task(name, dur, gap=0.0):
    return Task(name=name, kind=TaskKind.CPU, thread=cpu_thread(0),
                duration=dur, gap=gap)


def gpu_task(name, dur):
    return Task(name=name, kind=TaskKind.GPU_KERNEL, thread=gpu_stream(0),
                duration=dur)


class TestSyntheticBreakdowns:
    def test_pure_cpu(self):
        g = DependencyGraph()
        g.append(cpu_task("a", 10.0))
        b = compute_breakdown(g, simulate(g))
        assert b.cpu_only_us == pytest.approx(10.0)
        assert b.gpu_only_us == 0.0
        assert b.parallel_us == 0.0

    def test_full_overlap(self):
        g = DependencyGraph()
        g.append(cpu_task("c", 10.0))
        g.append(gpu_task("g", 10.0))
        b = compute_breakdown(g, simulate(g))
        assert b.parallel_us == pytest.approx(10.0)
        assert b.cpu_only_us == 0.0
        assert b.gpu_only_us == 0.0

    def test_launch_then_wait(self):
        """CPU launches (2us), GPU runs 10us, CPU syncs at the end."""
        g = DependencyGraph()
        launch = g.append(cpu_task("launch", 2.0))
        kernel = g.append(gpu_task("kernel", 10.0))
        sync = g.append(cpu_task("sync", 1.0))
        g.add_dependency(launch, kernel)
        g.add_dependency(kernel, sync)
        b = compute_breakdown(g, simulate(g))
        # launch [0,2], kernel [2,12], sync [12,13]: no overlap at all
        assert b.parallel_us == pytest.approx(0.0, abs=1e-6)
        assert b.gpu_only_us == pytest.approx(10.0, abs=1e-6)
        assert b.cpu_only_us == pytest.approx(3.0, abs=1e-6)

    def test_gap_counts_as_cpu_time(self):
        g = DependencyGraph()
        g.append(cpu_task("a", 1.0, gap=5.0))
        g.append(cpu_task("b", 1.0))
        b = compute_breakdown(g, simulate(g))
        assert b.cpu_only_us == pytest.approx(7.0)

    def test_components_bounded_by_total(self):
        g = DependencyGraph()
        g.append(cpu_task("a", 3.0))
        g.append(gpu_task("g", 8.0))
        b = compute_breakdown(g, simulate(g))
        assert (b.cpu_only_us + b.gpu_only_us + b.parallel_us
                <= b.total_us + 1e-6)

    def test_as_row_converts_to_ms(self):
        b = RuntimeBreakdown(total_us=2000.0, cpu_only_us=1000.0,
                             gpu_only_us=500.0, parallel_us=500.0)
        assert b.as_row() == [2.0, 1.0, 0.5, 0.5]
        assert b.other_us == 0.0


class TestModelBreakdowns:
    def test_tiny_model_components_cover_iteration(self, tiny_trace):
        graph = build_graph(tiny_trace)
        b = compute_breakdown(graph, simulate(graph))
        covered = b.cpu_only_us + b.gpu_only_us + b.parallel_us
        assert covered == pytest.approx(b.total_us, rel=0.05)

    def test_fp16_shrinks_gpu_only_not_cpu(self):
        """The paper's Figure-6 signature: AMP cuts GPU-only time while the
        CPU-side time stays put (and can grow in relative terms)."""
        model = make_tiny_model()
        results = {}
        for precision in ("fp32", "fp16"):
            trace = profile_iteration(model, TrainingConfig(precision=precision))
            graph = build_graph(trace)
            results[precision] = compute_breakdown(graph, simulate(graph))
        assert results["fp16"].gpu_only_us < results["fp32"].gpu_only_us
        cpu32 = results["fp32"].cpu_only_us + results["fp32"].parallel_us
        cpu16 = results["fp16"].cpu_only_us + results["fp16"].parallel_us
        assert cpu16 == pytest.approx(cpu32, rel=0.10)
