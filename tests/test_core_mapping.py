"""Tests for the synchronization-free task-to-layer mapping."""

import pytest

from repro.common.errors import MappingError
from repro.core.construction import build_graph
from repro.core.mapping import map_tasks_to_layers, mapping_coverage
from repro.tracing.records import EventCategory, TraceEvent, cpu_thread
from repro.tracing.trace import Trace


class TestMappingAgainstOracle:
    """The engine knows the true layer of every kernel (recorded as
    markers); the mapping must recover it from windows + correlations."""

    def test_gpu_tasks_match_oracle(self, tiny_trace):
        graph = build_graph(tiny_trace)
        checked = 0
        for task in graph.tasks():
            oracle = task.metadata.get("oracle_layer")
            if task.is_gpu and oracle:
                assert task.layer == oracle
                checked += 1
        assert checked > 10

    def test_phases_assigned(self, tiny_trace):
        graph = build_graph(tiny_trace)
        phases = {t.phase for t in graph.tasks() if t.phase}
        assert phases == {"forward", "backward", "weight_update"}

    def test_coverage_high(self, tiny_trace):
        graph = build_graph(tiny_trace)
        assert mapping_coverage(graph) > 0.9

    def test_coverage_below_one(self, tiny_trace):
        """Input upload and loss readback legitimately stay unmapped."""
        graph = build_graph(tiny_trace)
        assert mapping_coverage(graph) < 1.0

    def test_resnet_coverage(self, resnet_trace):
        graph = build_graph(resnet_trace)
        assert mapping_coverage(graph) > 0.98

    def test_weight_update_tasks_mapped_to_layers(self, tiny_trace):
        graph = build_graph(tiny_trace)
        wu = [t for t in graph.tasks() if t.phase == "weight_update"]
        assert wu
        assert all(t.layer is not None for t in wu)


class TestMappingEdgeCases:
    def test_no_markers_is_noop(self, tiny_trace):
        stripped = Trace(
            events=[e for e in tiny_trace.events
                    if e.category is not EventCategory.MARKER],
            metadata=tiny_trace.metadata,
        )
        graph = build_graph(stripped)
        assert mapping_coverage(graph) == 0.0

    def test_overlapping_windows_rejected(self, tiny_trace):
        events = list(tiny_trace.events)
        events.append(TraceEvent(
            category=EventCategory.MARKER, name="bogus#forward",
            start_us=0.0, duration_us=tiny_trace.duration_us,
            thread=cpu_thread(0), layer="bogus", phase="forward",
        ))
        with pytest.raises(MappingError):
            build_graph(Trace(events=events, metadata=tiny_trace.metadata))

    def test_marker_without_layer_rejected(self, tiny_trace):
        events = list(tiny_trace.events)
        events.append(TraceEvent(
            category=EventCategory.MARKER, name="anon",
            start_us=tiny_trace.end_us + 10, duration_us=1.0,
            thread=cpu_thread(0),
        ))
        with pytest.raises(MappingError):
            build_graph(Trace(events=events, metadata=tiny_trace.metadata))

    def test_mapping_returns_assignment_count(self, tiny_trace):
        graph = build_graph(tiny_trace, map_layers=False)
        count = map_tasks_to_layers(graph, tiny_trace)
        assert count > 0
        # idempotent-ish: second run assigns nothing new
        assert map_tasks_to_layers(graph, tiny_trace) == 0
