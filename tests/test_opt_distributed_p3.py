"""Tests for the distributed-training and P3 what-if models."""

import pytest

from repro.analysis.session import WhatIfSession
from repro.common.errors import ConfigError
from repro.framework.config import TrainingConfig
from repro.hw.device import GPU_2080TI, GPU_P4000
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.optimizations import DistributedTraining, PriorityParameterPropagation
from repro.optimizations.p3 import (
    RECEIVE_CHANNEL,
    SEND_CHANNEL,
    ParameterServerTransfer,
    ServerCostModel,
)


def cluster(machines=2, gpus=1, bw=10.0, gpu=GPU_2080TI):
    return ClusterSpec(machines, gpus, gpu, NetworkSpec(bandwidth_gbps=bw))


@pytest.fixture
def session(tiny_model):
    return WhatIfSession.from_model(tiny_model)


class TestDistributedTraining:
    def test_requires_cluster(self, session):
        with pytest.raises(ConfigError):
            session.predict(DistributedTraining())

    def test_single_worker_is_noop(self, session):
        pred = session.predict(DistributedTraining(), cluster=cluster(1, 1))
        assert pred.predicted_us == pytest.approx(session.baseline_us)

    def test_prediction_slower_than_single_gpu(self, session):
        pred = session.predict(DistributedTraining(), cluster=cluster())
        assert pred.predicted_us > session.baseline_us

    def test_one_allreduce_per_bucket(self, session):
        graph, _ = session.predict_simulation(DistributedTraining(),
                                              cluster=cluster())
        comm = [t for t in graph.tasks() if t.is_comm]
        assert len(comm) == len(session.trace.metadata["buckets"])

    def test_allreduce_gates_weight_update(self, session):
        graph, result = session.predict_simulation(DistributedTraining(),
                                                   cluster=cluster())
        comm = [t for t in graph.tasks() if t.is_comm]
        wu_start = min(result.start_us[t] for t in graph.tasks()
                       if t.phase == "weight_update")
        assert wu_start >= max(result.end_us(t) for t in comm) - 1e-6

    def test_more_workers_more_comm_time(self, session):
        two = session.predict(DistributedTraining(), cluster=cluster(2, 1))
        eight = session.predict(DistributedTraining(), cluster=cluster(4, 2))
        assert eight.predicted_us > two.predicted_us

    def test_higher_bandwidth_faster(self, session):
        slow = session.predict(DistributedTraining(), cluster=cluster(bw=5))
        fast = session.predict(DistributedTraining(), cluster=cluster(bw=40))
        assert fast.predicted_us < slow.predicted_us

    def test_missing_bucket_metadata_rejected(self, session):
        context = session.context(cluster())
        context.trace_metadata["buckets"] = []
        with pytest.raises(ConfigError):
            DistributedTraining().apply(session.graph.copy(), context)


class TestParameterServerTransfer:
    def _mxnet_session(self, tiny_model):
        config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
        return WhatIfSession.from_model(tiny_model, config=config)

    def test_requires_cluster(self, session):
        with pytest.raises(ConfigError):
            session.predict(PriorityParameterPropagation())

    def test_push_pull_tasks_created(self, tiny_model):
        session = self._mxnet_session(tiny_model)
        graph, _ = session.predict_simulation(
            PriorityParameterPropagation(),
            cluster=cluster(4, 1, gpu=GPU_P4000))
        pushes = [t for t in graph.tasks() if t.name.startswith("push")]
        pulls = [t for t in graph.tasks() if t.name.startswith("pull")]
        assert pushes and len(pushes) == len(pulls)

    def test_channels_unordered(self, tiny_model):
        session = self._mxnet_session(tiny_model)
        graph, _ = session.predict_simulation(
            PriorityParameterPropagation(),
            cluster=cluster(4, 1, gpu=GPU_P4000))
        assert not graph.is_ordered(SEND_CHANNEL)
        assert not graph.is_ordered(RECEIVE_CHANNEL)

    def test_slicing_splits_large_tensors(self, tiny_model):
        session = self._mxnet_session(tiny_model)
        small_slices = PriorityParameterPropagation(slice_bytes=64 * 1024)
        graph, _ = session.predict_simulation(
            small_slices, cluster=cluster(4, 1, gpu=GPU_P4000))
        coarse = PriorityParameterPropagation(slice_bytes=1 << 30)
        graph2, _ = session.predict_simulation(
            coarse, cluster=cluster(4, 1, gpu=GPU_P4000))
        n_fine = sum(1 for t in graph.tasks() if t.name.startswith("push"))
        n_coarse = sum(1 for t in graph2.tasks() if t.name.startswith("push"))
        assert n_fine > n_coarse

    def test_p3_beats_baseline_ps(self, tiny_model):
        session = self._mxnet_session(tiny_model)
        cl = cluster(4, 1, bw=2.0, gpu=GPU_P4000)
        baseline = session.predict(
            ParameterServerTransfer(slice_bytes=None, prioritize=False),
            cluster=cl)
        p3 = session.predict(PriorityParameterPropagation(), cluster=cl)
        assert p3.predicted_us <= baseline.predicted_us

    def test_server_cost_slows_transfers(self, tiny_model):
        session = self._mxnet_session(tiny_model)
        cl = cluster(4, 1, bw=8.0, gpu=GPU_P4000)
        ideal = session.predict(
            ParameterServerTransfer(slice_bytes=None, prioritize=False),
            cluster=cl)
        costly = session.predict(
            ParameterServerTransfer(slice_bytes=None, prioritize=False,
                                    server=ServerCostModel()),
            cluster=cl)
        assert costly.predicted_us >= ideal.predicted_us

    def test_invalid_slice_size_rejected(self):
        with pytest.raises(ConfigError):
            ParameterServerTransfer(slice_bytes=0)

    def test_graph_validates(self, tiny_model):
        session = self._mxnet_session(tiny_model)
        graph, _ = session.predict_simulation(
            PriorityParameterPropagation(),
            cluster=cluster(4, 1, gpu=GPU_P4000))
        graph.validate()


class TestServerCostModel:
    def test_cost_grows_with_size(self):
        server = ServerCostModel()
        assert server.cost_us(1e6) > server.cost_us(1e3)

    def test_fixed_floor(self):
        server = ServerCostModel(per_op_us=50.0)
        assert server.cost_us(0.0) == 50.0
