"""The documentation must stay true.

Three gates keep README and ``docs/`` from drifting away from the code:

* **quickstart smoke** — every ``$ python -m repro ...`` command in the
  README is executed *as written* (from the repo root) and must exit 0;
* **CLI reference drift** — ``docs/cli.md`` documents one section per
  subcommand; each section's ``--flags`` are compared as a *set* against
  the live argparse parsers, so adding/renaming/removing a flag without
  documenting it fails the suite;
* **link check** — every relative markdown link in README and ``docs/``
  must resolve to an existing file (CI runs this as its own job).
"""

import argparse
import re
import shlex
import shutil
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOCS = REPO_ROOT / "docs"
CLI_MD = DOCS / "cli.md"


# ------------------------------------------------------------ README smoke

def readme_commands():
    """Every ``$ python -m repro ...`` line in the README, in order."""
    text = README.read_text(encoding="utf-8")
    return re.findall(r"^\$ python -m repro (.+)$", text, flags=re.M)


@pytest.fixture
def repo_cwd(monkeypatch):
    """Run from the repo root (README paths are relative to it) and drop
    any ``.sweep-store`` the quickstart creates."""
    monkeypatch.chdir(REPO_ROOT)
    yield
    shutil.rmtree(REPO_ROOT / ".sweep-store", ignore_errors=True)


def test_readme_has_a_quickstart():
    commands = readme_commands()
    assert len(commands) >= 5, "README quickstart lost its commands"
    # the walkthrough covers the advertised command surface
    covered = {cmd.split()[0] for cmd in commands}
    assert {"profile", "whatif", "run", "sweep", "experiment",
            "store", "serve-predict"} <= covered


def test_readme_quickstart_commands_execute_as_written(repo_cwd, capsys):
    for command in readme_commands():
        code = main(shlex.split(command))
        captured = capsys.readouterr()
        assert code == 0, (
            f"README command failed: python -m repro {command}\n"
            f"stdout:\n{captured.out}\nstderr:\n{captured.err}"
        )


# ------------------------------------------------------- CLI reference drift

def _live_subcommands():
    """Map each subcommand to its full ``--flag`` set (nested included)."""
    parser = build_parser()
    (sub_action,) = [a for a in parser._actions
                     if isinstance(a, argparse._SubParsersAction)]

    def flags_of(sub) -> set:
        found = set()
        for action in sub._actions:
            if isinstance(action, argparse._SubParsersAction):
                for child in action.choices.values():
                    found |= flags_of(child)
            else:
                found.update(o for o in action.option_strings
                             if o.startswith("--"))
        found.discard("--help")
        return found

    return {name: flags_of(sub)
            for name, sub in sub_action.choices.items()}


def _documented_sections():
    """Map each ``## repro <name>`` section of cli.md to its text."""
    text = CLI_MD.read_text(encoding="utf-8")
    sections = {}
    matches = list(re.finditer(r"^## repro ([\w-]+)$", text, flags=re.M))
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[match.group(1)] = text[match.end():end]
    return sections


def test_cli_reference_documents_every_subcommand():
    live = _live_subcommands()
    documented = _documented_sections()
    assert set(documented) == set(live), (
        "docs/cli.md sections do not match the live subcommands — "
        f"documented {sorted(documented)}, live {sorted(live)}"
    )
    assert len(live) == 9  # the README promises all nine


def test_cli_reference_matches_live_parsers():
    live = _live_subcommands()
    for name, section in _documented_sections().items():
        documented = set(re.findall(r"--[a-z][a-z0-9-]*", section))
        assert documented == live[name], (
            f"docs/cli.md section 'repro {name}' is out of sync: "
            f"documented {sorted(documented)}, live {sorted(live[name])}"
        )


def test_cli_reference_documents_store_actions():
    parser = build_parser()
    (sub_action,) = [a for a in parser._actions
                     if isinstance(a, argparse._SubParsersAction)]
    store = sub_action.choices["store"]
    (store_sub,) = [a for a in store._actions
                    if isinstance(a, argparse._SubParsersAction)]
    section = _documented_sections()["store"]
    for action_name in store_sub.choices:
        assert re.search(rf"\b{action_name}\b", section), (
            f"docs/cli.md 'repro store' section misses the "
            f"{action_name!r} action"
        )
    # the shared-tier actions are part of the promised surface
    assert {"serve", "push", "pull"} <= set(store_sub.choices)


def test_remote_tier_flags_stay_live():
    """The documented remote tier must exist in the live parsers.

    The generic drift check above only compares docs against whatever
    parsers exist; this pins the parsers themselves, so silently
    *removing* the remote tier (flags and docs together) still fails.
    """
    live = _live_subcommands()
    assert "--remote" in live["sweep"]
    assert "--remote" in live["experiment"]
    assert {"--remote", "--host", "--port", "--duration",
            "--read-only"} <= live["store"]
    # the coordination plane's surface: admin auth everywhere a remote
    # is dialed, delta-sync clock override on the transfer commands
    assert "--auth-token" in live["sweep"]
    assert "--auth-token" in live["experiment"]
    assert {"--auth-token", "--since"} <= live["store"]
    # the prediction daemon's surface: pool/concurrency knobs, request
    # auth, and the same store/remote memo tiers as every other surface
    assert {"--host", "--port", "--workers", "--max-sessions",
            "--auth-token", "--store", "--remote", "--duration",
            "--remote-timeout", "--remote-backoff"} == live["serve-predict"]


def test_service_contract_doc_exists():
    text = (DOCS / "service.md").read_text(encoding="utf-8")
    # the service contract's load-bearing vocabulary, pinned so a
    # rewrite cannot silently drop a section the code still depends on
    for term in ("POST /predict", "/predict/batch", "/healthz", "/stats",
                 "LRU", "session", "memoiz", "salt", "Bearer",
                 "simulate_many", "bit-identical", "warm", "evict",
                 "400", "401", "413", "500", "per request",
                 "scenario_key", "determinism"):
        assert re.search(term, text, flags=re.I), (
            f"docs/service.md lost its {term!r} contract"
        )


def test_store_backends_contract_doc_exists():
    text = (DOCS / "store-backends.md").read_text(encoding="utf-8")
    # the contract's load-bearing vocabulary, pinned so a rewrite cannot
    # silently drop a section the code still depends on
    for term in ("StoreBackend", "LocalBackend", "HTTPBackend",
                 "read-through", "write-back", "lease",
                 "steal", "corruption", "atomic",
                 # the coordination plane's vocabulary
                 "ComputeLease", "exactly once", "fail.{1,2}open",
                 "ETag", "If-None-Match", r"\?since=", "/stats",
                 "auth-token", "401", "down window"):
        assert re.search(term, text, flags=re.I), (
            f"docs/store-backends.md lost its {term!r} contract"
        )


def test_robustness_contract_doc_exists():
    text = (DOCS / "robustness.md").read_text(encoding="utf-8")
    # the failure-mode matrix's load-bearing vocabulary: each term names
    # a recovery mechanism the code depends on, pinned so a rewrite
    # cannot silently drop the contract for one
    for term in ("RetryPolicy", "BrokenProcessPool", "quarantine",
                 "max-cell-retries", "FaultInjectingBackend", "lease",
                 "steal", "partial-progress", "jitter", "bit-identical",
                 "fail.{1,2}loudly"):
        assert re.search(term, text, flags=re.I), (
            f"docs/robustness.md lost its {term!r} contract"
        )
    # the matrix itself: a table row per anticipated fault class
    for fault in ("Worker crash", "unreachable", "corrupt", "truncated",
                  "mid-`push`", "GC racing", "Lease server dies",
                  "401 on push"):
        assert re.search(fault, text, flags=re.I), (
            f"docs/robustness.md matrix lost its {fault!r} row"
        )


# ------------------------------------------------------------------ links

def markdown_files():
    return [README, *sorted(DOCS.glob("*.md"))]


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_markdown_relative_links_resolve():
    broken = []
    for md in markdown_files():
        for target in LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = (md.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                broken.append(f"{md.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, f"broken markdown links: {broken}"
