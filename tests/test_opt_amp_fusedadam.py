"""Tests for the AMP and FusedAdam what-if models."""

import pytest

from repro.analysis.session import WhatIfSession
from repro.common.errors import GraphConsistencyError
from repro.core import transform
from repro.framework.config import TrainingConfig
from repro.hw.device import GPU_P4000
from repro.optimizations import AutomaticMixedPrecision, FusedAdam
from repro.optimizations.base import WhatIfContext

from helpers import make_tiny_model


@pytest.fixture
def session(tiny_model):
    return WhatIfSession.from_model(tiny_model)


class TestAMPModel:
    def test_predicts_speedup(self, session):
        pred = session.predict(AutomaticMixedPrecision())
        assert pred.predicted_us < session.baseline_us
        assert pred.speedup > 1.0

    def test_compute_kernels_shrunk_3x(self, session):
        graph, _ = session.predict_simulation(AutomaticMixedPrecision())
        baseline = session.graph
        base_gemm = transform.select_by_name(baseline, "sgemm", "scudnn")
        amp_gemm = transform.select_by_name(graph, "sgemm", "scudnn")
        base_total = transform.total_duration(
            [t for t in base_gemm if t.is_gpu])
        amp_total = transform.total_duration([t for t in amp_gemm if t.is_gpu])
        assert amp_total == pytest.approx(base_total / 3.0, rel=1e-6)

    def test_memory_kernels_shrunk_2x(self, session):
        graph, _ = session.predict_simulation(AutomaticMixedPrecision())
        base = [t for t in transform.select_gpu_tasks(session.graph)
                if "RELU" in t.name]
        amp = [t for t in transform.select_gpu_tasks(graph)
               if "RELU" in t.name]
        assert transform.total_duration(amp) == pytest.approx(
            transform.total_duration(base) / 2.0, rel=1e-6)

    def test_weight_update_kernels_untouched(self, session):
        """fp32 master weights: optimizer kernels keep their duration."""
        graph, _ = session.predict_simulation(AutomaticMixedPrecision())
        base_wu = [t for t in transform.select_by_phase(session.graph,
                                                        "weight_update")
                   if t.is_gpu]
        amp_wu = [t for t in transform.select_by_phase(graph, "weight_update")
                  if t.is_gpu]
        assert transform.total_duration(amp_wu) == pytest.approx(
            transform.total_duration(base_wu))

    def test_cpu_tasks_untouched(self, session):
        graph, _ = session.predict_simulation(AutomaticMixedPrecision())
        base_cpu = sum(t.duration for t in session.graph.tasks() if t.is_cpu)
        amp_cpu = sum(t.duration for t in graph.tasks() if t.is_cpu)
        assert amp_cpu == pytest.approx(base_cpu)

    def test_no_tensor_cores_reduces_gemm_gain(self, tiny_model):
        config = TrainingConfig(gpu=GPU_P4000)
        session = WhatIfSession.from_model(tiny_model, config=config)
        graph, _ = session.predict_simulation(AutomaticMixedPrecision())
        base = transform.total_duration(
            [t for t in transform.select_by_name(session.graph, "sgemm",
                                                 "scudnn") if t.is_gpu])
        amp = transform.total_duration(
            [t for t in transform.select_by_name(graph, "sgemm", "scudnn")
             if t.is_gpu])
        assert amp > base / 2.0  # only the modest non-TC gain

    def test_custom_shrink_factors(self, session):
        mild = session.predict(AutomaticMixedPrecision(
            compute_shrink=1.5, memory_shrink=1.2))
        aggressive = session.predict(AutomaticMixedPrecision())
        assert mild.predicted_us > aggressive.predicted_us


class TestFusedAdamModel:
    def test_predicts_speedup(self, session):
        pred = session.predict(FusedAdam())
        assert pred.predicted_us < session.baseline_us

    def test_single_wu_kernel_remains(self, session):
        graph, _ = session.predict_simulation(FusedAdam())
        wu_gpu = [t for t in transform.select_by_phase(graph, "weight_update")
                  if t.is_gpu]
        assert len(wu_gpu) == 1
        assert "fused_adam" in wu_gpu[0].name

    def test_launch_apis_removed(self, session):
        graph, _ = session.predict_simulation(FusedAdam())
        base_wu_cpu = [t for t in transform.select_by_phase(
            session.graph, "weight_update") if t.is_cpu]
        fused_wu_cpu = [t for t in transform.select_by_phase(
            graph, "weight_update") if t.is_cpu]
        assert len(fused_wu_cpu) == 1
        assert len(base_wu_cpu) > 50

    def test_fused_duration_is_core_kernel_sum(self, session):
        base_wu = [t for t in transform.select_by_phase(
            session.graph, "weight_update") if t.is_gpu]
        expected = sum(t.duration for t in base_wu
                       if any(m in t.name for m in
                              ("addcmul", "addcdiv", "mul_exp_avg")))
        graph, _ = session.predict_simulation(FusedAdam())
        fused = [t for t in transform.select_by_phase(graph, "weight_update")
                 if t.is_gpu][0]
        assert fused.duration == pytest.approx(expected)

    def test_graph_still_valid_and_simulates(self, session):
        graph, result = session.predict_simulation(FusedAdam())
        graph.validate()
        assert result.makespan_us > 0

    def test_requires_mapped_wu_tasks(self, session):
        graph = session.graph.copy()
        for task in graph.tasks():
            task.phase = None
        with pytest.raises(GraphConsistencyError):
            FusedAdam().apply(graph, WhatIfContext())

    def test_sgd_model_falls_back_to_full_sum(self):
        model = make_tiny_model(optimizer="sgd")
        session = WhatIfSession.from_model(model)
        pred = session.predict(FusedAdam())  # no addcmul kernels in SGD
        assert pred.predicted_us < session.baseline_us
