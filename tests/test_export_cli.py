"""Tests for Chrome-trace export and the command-line interface."""

import json


from repro.__main__ import main
from repro.analysis.session import WhatIfSession
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.optimizations import AutomaticMixedPrecision
from repro.tracing.export import simulation_to_chrome, trace_to_chrome


class TestChromeExport:
    def test_trace_export_valid_json(self, tiny_trace):
        data = json.loads(trace_to_chrome(tiny_trace))
        assert "traceEvents" in data
        events = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == len(tiny_trace)

    def test_trace_export_fields(self, tiny_trace):
        data = json.loads(trace_to_chrome(tiny_trace))
        kernels = [e for e in data["traceEvents"] if e.get("cat") == "kernel"]
        assert kernels
        for k in kernels[:5]:
            assert k["dur"] > 0
            assert "correlation" in k["args"]

    def test_thread_name_metadata(self, tiny_trace):
        data = json.loads(trace_to_chrome(tiny_trace))
        names = [e for e in data["traceEvents"] if e.get("ph") == "M"]
        labels = {e["args"]["name"] for e in names}
        assert "cpu:0" in labels
        assert "gpu_stream:7" in labels

    def test_simulation_export(self, tiny_trace):
        graph = build_graph(tiny_trace)
        result = simulate(graph)
        data = json.loads(simulation_to_chrome(graph, result))
        spans = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == len(graph)

    def test_whatif_schedule_export(self, tiny_model):
        """Exporting a transformed schedule works end to end."""
        session = WhatIfSession.from_model(tiny_model)
        graph, result = session.predict_simulation(AutomaticMixedPrecision())
        data = json.loads(simulation_to_chrome(graph, result))
        assert data["traceEvents"]


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "bert_large" in out

    def test_profile(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.json")
        chrome_path = str(tmp_path / "c.json")
        code = main(["profile", "resnet50", "--batch-size", "2",
                     "--save", trace_path, "--chrome", chrome_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "ms/iteration" in out
        assert json.load(open(chrome_path))["traceEvents"]
        from repro.tracing.trace import Trace
        assert len(Trace.load(trace_path)) > 100

    def test_whatif(self, capsys):
        assert main(["whatif", "resnet50", "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "amp" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "AMP" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_experiment_fig7_store_jobs_hits_cache_on_second_run(
            self, capsys, tmp_path):
        """The acceptance path: ``repro experiment fig7 --store --jobs 2``.

        The first run measures the engine ground truth and persists it;
        the second run serves it from the store (the stderr store summary
        reports the hits) and renders the same table.
        """
        store_dir = str(tmp_path / "store")
        argv = ["experiment", "fig7", "--store", store_dir, "--jobs", "2",
                "--models", "bert_base"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "bert_base" in first.out
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # same rendered table
        # stderr summary shows the ground truth came from the store
        assert "1 hit(s)" in second.err

    def test_experiment_unsupported_flag_is_noted_not_fatal(
            self, capsys, tmp_path):
        code = main(["experiment", "fig1", "--store",
                     str(tmp_path / "s"), "--jobs", "2"])
        assert code == 0
        err = capsys.readouterr().err
        assert "does not take --store" in err
        assert "does not take --jobs" in err

    def test_sweep_start_method_flag(self, capsys, tmp_path):
        import json as jsonlib
        grid = tmp_path / "grid.json"
        grid.write_text(jsonlib.dumps({
            "base": {"model": "resnet50", "batch_size": 2,
                     "optimizations": ["distributed_training"],
                     "cluster": {"machines": 2, "bandwidth_gbps": 10}},
            "axes": {"cluster.bandwidth_gbps": [10, 25]},
        }))
        store_dir = str(tmp_path / "store")
        assert main(["sweep", str(grid), "--jobs", "2", "--store", store_dir,
                     "--start-method", "serial"]) == 0
        first = capsys.readouterr()
        assert "2 cell(s)" in first.err
        # warm re-run (default start method) serves both cells
        assert main(["sweep", str(grid), "--jobs", "2",
                     "--store", store_dir]) == 0
        second = capsys.readouterr()
        assert "2 from store" in second.err
        assert second.out == first.out

    def test_store_cli_roundtrip(self, capsys, tmp_path):
        import json as jsonlib
        root = str(tmp_path / "store")
        from repro.scenarios import Scenario, SweepStore
        SweepStore(root).put(Scenario(model="resnet50"),
                             {"baseline_us": 1.0, "predicted_us": 1.0})
        assert main(["store", "stats", root]) == 0
        stats = jsonlib.loads(capsys.readouterr().out)
        assert stats["entries"] == 1 and stats["live"] == 1
        assert main(["store", "gc", root, "--max-bytes", "1"]) == 0
        report = jsonlib.loads(capsys.readouterr().out)
        assert report["evicted"] == 1
        assert main(["store", "verify", root]) == 0
