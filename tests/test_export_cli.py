"""Tests for Chrome-trace export and the command-line interface."""

import json


from repro.__main__ import main
from repro.analysis.session import WhatIfSession
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.optimizations import AutomaticMixedPrecision
from repro.tracing.export import simulation_to_chrome, trace_to_chrome


class TestChromeExport:
    def test_trace_export_valid_json(self, tiny_trace):
        data = json.loads(trace_to_chrome(tiny_trace))
        assert "traceEvents" in data
        events = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == len(tiny_trace)

    def test_trace_export_fields(self, tiny_trace):
        data = json.loads(trace_to_chrome(tiny_trace))
        kernels = [e for e in data["traceEvents"] if e.get("cat") == "kernel"]
        assert kernels
        for k in kernels[:5]:
            assert k["dur"] > 0
            assert "correlation" in k["args"]

    def test_thread_name_metadata(self, tiny_trace):
        data = json.loads(trace_to_chrome(tiny_trace))
        names = [e for e in data["traceEvents"] if e.get("ph") == "M"]
        labels = {e["args"]["name"] for e in names}
        assert "cpu:0" in labels
        assert "gpu_stream:7" in labels

    def test_simulation_export(self, tiny_trace):
        graph = build_graph(tiny_trace)
        result = simulate(graph)
        data = json.loads(simulation_to_chrome(graph, result))
        spans = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == len(graph)

    def test_whatif_schedule_export(self, tiny_model):
        """Exporting a transformed schedule works end to end."""
        session = WhatIfSession.from_model(tiny_model)
        graph, result = session.predict_simulation(AutomaticMixedPrecision())
        data = json.loads(simulation_to_chrome(graph, result))
        assert data["traceEvents"]


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "bert_large" in out

    def test_profile(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.json")
        chrome_path = str(tmp_path / "c.json")
        code = main(["profile", "resnet50", "--batch-size", "2",
                     "--save", trace_path, "--chrome", chrome_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "ms/iteration" in out
        assert json.load(open(chrome_path))["traceEvents"]
        from repro.tracing.trace import Trace
        assert len(Trace.load(trace_path)) > 100

    def test_whatif(self, capsys):
        assert main(["whatif", "resnet50", "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "amp" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "AMP" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
