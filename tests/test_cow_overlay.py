"""Copy-on-write overlay semantics: base graphs stay pristine.

``DependencyGraph.overlay()`` shares task objects with the base until they
are written; these tests pin down the isolation contract the what-if
session relies on (paper Section 7.1: one profile, many questions).
"""

import multiprocessing

import pytest

from helpers import make_tiny_model

from repro.analysis.session import WhatIfSession
from repro.core.graph import DependencyGraph
from repro.core.simulate import simulate
from repro.core.task import Task, TaskKind
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.optimizations import (
    AutomaticMixedPrecision,
    DistributedTraining,
    FusedAdam,
)
from repro.tracing.records import cpu_thread, gpu_stream


def make_task(name, thread=None, duration=1.0):
    return Task(name=name, kind=TaskKind.CPU, thread=thread or cpu_thread(0),
                duration=duration)


@pytest.fixture
def tiny_graph(tiny_trace):
    from repro.core.construction import build_graph
    return build_graph(tiny_trace)


class TestOverlayIsolation:
    def test_overlay_shares_until_written(self):
        g = DependencyGraph()
        a = g.append(make_task("a", duration=3.0))
        overlay = g.overlay()
        assert overlay.tasks()[0] is a  # shared, not cloned
        overlay.tasks()[0].duration = 99.0
        # the write materialized a pristine clone in the base
        (base_a,) = g.tasks()
        assert base_a is not a
        assert base_a.duration == 3.0
        assert a.duration == 99.0
        assert overlay.tasks()[0] is a

    def test_structural_mutation_never_touches_base(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0)))
        g.add_dependency(a, b)
        overlay = g.overlay()
        overlay.remove(b)
        overlay.insert_after(a, make_task("x"))
        overlay.add_dependency(overlay.tasks()[0], overlay.tasks()[1])
        assert len(g) == 2
        assert b in g
        assert g.successors(a) == {b}
        g.validate()
        overlay.validate()

    def test_launch_kernel_metadata_group_swaps_together(self, tiny_graph):
        overlay = tiny_graph.overlay()
        kernel = next(t for t in overlay.tasks()
                      if isinstance(t.metadata.get("launched_by"), Task))
        launch = kernel.metadata["launched_by"]
        kernel.duration = kernel.duration * 2  # materializes the pair
        base_kernels = [t for t in tiny_graph.tasks()
                        if t.name == kernel.name
                        and t.correlation_id == kernel.correlation_id]
        assert base_kernels and all(t is not kernel for t in base_kernels)
        base_kernel = base_kernels[0]
        base_launch = base_kernel.metadata["launched_by"]
        assert base_launch is not launch
        assert base_launch.metadata["launches"] is base_kernel
        assert launch.metadata["launches"] is kernel
        tiny_graph.validate()

    def test_base_resimulates_identically_after_heavy_overlay_mutation(
            self, tiny_graph):
        baseline = simulate(tiny_graph).makespan_us
        overlay = tiny_graph.overlay()
        for task in overlay.select(lambda t: t.is_gpu):
            task.scale_duration(0.25)
        for task in list(overlay.iter_tasks_on(cpu_thread(0)))[::3]:
            overlay.remove(task)
        assert simulate(tiny_graph).makespan_us == baseline
        tiny_graph.validate()

    def test_retained_overlay_survives_new_overlay(self, tiny_graph):
        first = tiny_graph.overlay()
        for task in first.select(lambda t: t.is_gpu):
            task.scale_duration(0.5)
        first_makespan = simulate(first).makespan_us
        second = tiny_graph.overlay()  # quiesces `first`
        for task in second.select(lambda t: t.is_gpu):
            task.scale_duration(2.0)
        assert simulate(first).makespan_us == first_makespan
        first.validate()
        second.validate()
        tiny_graph.validate()

    def test_overlay_of_overlay_falls_back_to_copy(self, tiny_graph):
        overlay = tiny_graph.overlay()
        nested = overlay.overlay()
        nested_tasks = nested.tasks()
        assert all(a is not b for a, b in zip(nested_tasks, overlay.tasks()))
        nested.validate()


class TestCowSession:
    @pytest.fixture
    def session(self, tiny_model):
        trace = Engine(model=tiny_model,
                       config=TrainingConfig()).run_iteration()
        return WhatIfSession.from_trace(trace)

    def test_predictions_match_deep_copy_sessions(self, session):
        cluster = ClusterSpec(2, 2, GPU_2080TI, NetworkSpec(bandwidth_gbps=10))
        reference = WhatIfSession.from_trace(session.trace, session.config)
        reference.copy_on_write = False
        for optimization, cl in [(FusedAdam(), None),
                                 (AutomaticMixedPrecision(), None),
                                 (DistributedTraining(), cluster)]:
            cow = session.predict(optimization, cluster=cl)
            deep = reference.predict(optimization, cluster=cl)
            assert cow.predicted_us == deep.predicted_us
            assert cow.baseline_us == deep.baseline_us

    def test_baseline_and_breakdown_stable_across_questions(self, session):
        baseline = session.baseline_us
        breakdown = session.breakdown().as_row()
        session.predict(FusedAdam())
        session.predict(AutomaticMixedPrecision())
        assert session.baseline_us == baseline
        assert session.breakdown().as_row() == breakdown
        assert simulate(session.graph).makespan_us == baseline

    def test_sweep_matches_serial_predicts(self, session):
        cluster = ClusterSpec(2, 1, GPU_2080TI, NetworkSpec(bandwidth_gbps=10))
        questions = [FusedAdam(), AutomaticMixedPrecision(),
                     (DistributedTraining(), cluster)]
        serial = [session.predict(FusedAdam()),
                  session.predict(AutomaticMixedPrecision()),
                  session.predict(DistributedTraining(), cluster=cluster)]
        swept = session.sweep(questions, processes=1)
        assert [p.predicted_us for p in swept] == \
            [p.predicted_us for p in serial]

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_sweep_parallel_matches_serial(self, session):
        questions = [FusedAdam(), AutomaticMixedPrecision()]
        serial = session.sweep(questions, processes=1)
        parallel = session.sweep(questions, processes=2)
        assert [p.predicted_us for p in parallel] == \
            [p.predicted_us for p in serial]
        # forked workers never corrupt the parent's baseline
        assert simulate(session.graph).makespan_us == session.baseline_us
