"""Tests for the ground-truth executions and model surgery."""

import pytest

from repro.framework import groundtruth as gt
from repro.framework.config import TrainingConfig
from repro.framework.paramserver import run_ps_baseline, run_ps_p3
from repro.hw.device import GPU_2080TI, GPU_P4000
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec

from helpers import make_tiny_model


@pytest.fixture
def tiny_bn_model():
    return make_tiny_model()


class TestSingleGpuGroundTruths:
    def test_baseline(self, tiny_model):
        result = gt.run_baseline(tiny_model)
        assert result.iteration_us == result.trace.duration_us > 0

    def test_amp_faster_than_baseline(self, tiny_model):
        base = gt.run_baseline(tiny_model)
        amp = gt.run_amp(tiny_model)
        assert amp.iteration_us < base.iteration_us

    def test_amp_differs_from_flat_heuristic(self, tiny_model):
        """GT must not equal the /3,/2 heuristic — otherwise the evaluation
        would trivially report zero error."""
        from repro.analysis.session import WhatIfSession
        from repro.optimizations import AutomaticMixedPrecision
        session = WhatIfSession.from_model(tiny_model)
        pred = session.predict(AutomaticMixedPrecision())
        truth = gt.run_amp(tiny_model)
        gpu_pred = sum(t.duration for t in session.graph.tasks() if t.is_gpu)
        assert pred.predicted_us != pytest.approx(truth.iteration_us,
                                                  rel=1e-6)

    def test_fused_adam_faster(self, tiny_model):
        base = gt.run_baseline(tiny_model)
        fused = gt.run_fused_adam(tiny_model)
        assert fused.iteration_us < base.iteration_us

    def test_reconstructed_bn_faster(self, tiny_bn_model):
        base = gt.run_baseline(tiny_bn_model)
        rebuilt = gt.run_reconstructed_batchnorm(tiny_bn_model)
        assert rebuilt.iteration_us < base.iteration_us


class TestBatchnormSurgery:
    def test_relu_after_bn_removed(self, tiny_bn_model):
        surgered = gt.apply_batchnorm_restructuring(tiny_bn_model)
        kinds = [l.kind for l in surgered.layers]
        for prev, cur in zip(kinds, kinds[1:]):
            assert not (prev == "batchnorm" and cur == "relu")

    def test_bn_kernels_renamed_and_cheaper(self, tiny_bn_model):
        surgered = gt.apply_batchnorm_restructuring(tiny_bn_model)
        bn = surgered.layer("bn1")
        restructured = [k for k in bn.forward_kernels
                        if "restructured_bn" in k.name]
        assert restructured
        original = tiny_bn_model.layer("bn1").forward_kernels[0]
        assert restructured[0].bytes < original.bytes

    def test_staging_copies_added(self, tiny_bn_model):
        surgered = gt.apply_batchnorm_restructuring(tiny_bn_model)
        bn = surgered.layer("bn1")
        assert any("staging" in k.name for k in bn.forward_kernels)

    def test_params_preserved(self, tiny_bn_model):
        surgered = gt.apply_batchnorm_restructuring(tiny_bn_model)
        assert surgered.param_numel == tiny_bn_model.param_numel

    def test_name_tagged(self, tiny_bn_model):
        surgered = gt.apply_batchnorm_restructuring(tiny_bn_model)
        assert "restructured_bn" in surgered.name


class TestDistributedGroundTruth:
    def test_runs_and_slower_than_single(self, tiny_model):
        cluster = ClusterSpec(2, 1, GPU_2080TI, NetworkSpec(10.0))
        single = gt.run_baseline(tiny_model)
        multi = gt.run_distributed(tiny_model, cluster)
        assert multi.iteration_us > single.iteration_us

    def test_sync_variant_never_slower(self, tiny_model):
        cluster = ClusterSpec(4, 1, GPU_2080TI, NetworkSpec(10.0))
        plain = gt.run_distributed(tiny_model, cluster,
                                   sync_before_allreduce=False)
        synced = gt.run_distributed(tiny_model, cluster,
                                    sync_before_allreduce=True)
        assert synced.iteration_us <= plain.iteration_us * 1.02


class TestParameterServerGroundTruth:
    def _cluster(self, bw=4.0):
        return ClusterSpec(4, 1, GPU_P4000, NetworkSpec(bw))

    def test_baseline_and_p3(self, tiny_model):
        config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
        baseline = run_ps_baseline(tiny_model, self._cluster(), config)
        p3 = run_ps_p3(tiny_model, self._cluster(), config)
        assert baseline.variant == "baseline"
        assert p3.variant == "p3"
        assert p3.iteration_us <= baseline.iteration_us

    def test_bandwidth_scaling(self, tiny_model):
        config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
        slow = run_ps_baseline(tiny_model, self._cluster(bw=1.0), config)
        fast = run_ps_baseline(tiny_model, self._cluster(bw=16.0), config)
        assert fast.iteration_us < slow.iteration_us
