"""Every sweep substrate must produce bit-identical rows.

A pinned grid runs through all four execution paths —

* serial ``run_grid`` (``processes=1``: plain in-process loop),
* the fork-based ``WhatIfSession.sweep`` fan-out (``processes=2``),
* the process-pool batch executor (``parallel=2`` + a fresh store),
* a warm re-run served entirely from the store —

and the resulting ``ExperimentResult`` rows are compared with ``==``,
float for float.  This is the contract that makes the persistent store
trustworthy: a cached number *is* the number a cold run would produce.
"""

import pytest

from helpers import make_tiny_model
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.scenarios import Scenario, ScenarioGrid, ScenarioRunner, SweepStore

MODEL = "tinysweep"


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    def build(batch_size=None):
        return make_tiny_model(batch=batch_size or 4)
    try:
        register_model(MODEL, build)
    except ConfigError:
        pass  # already registered by an earlier module in this process


@pytest.fixture(scope="module")
def pinned_scenarios():
    grid = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={
            "cluster.bandwidth_gbps": [10.0, 25.0],
            "cluster.machines": [2, 4],
        },
    )
    # one baseline-only cell exercises the no-prediction path everywhere
    return grid.expand() + [Scenario(model=MODEL)]


def rows_of(outcomes):
    return [o.as_row() for o in outcomes]


def test_serial_fork_pool_and_cache_rows_identical(pinned_scenarios,
                                                   tmp_path):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    forked = ScenarioRunner().run_grid(pinned_scenarios, processes=2)

    store = SweepStore(str(tmp_path / "store"))
    pooled = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                       store=store)
    cached = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                       store=store)

    reference = rows_of(serial)
    assert rows_of(forked) == reference
    assert rows_of(pooled) == reference
    assert rows_of(cached) == reference

    assert all(not o.cached for o in pooled)
    assert all(o.cached for o in cached)
    # detached outcomes still resolve model/config/cluster for consumers
    assert all(o.model.name for o in pooled)
    assert cached[0].cluster is not None and cached[-1].cluster is None

    # the full ExperimentResult (headers + rows) is identical too
    serial_result = ScenarioRunner.to_result(serial)
    cached_result = ScenarioRunner.to_result(cached)
    assert serial_result.headers == cached_result.headers
    assert serial_result.rows == cached_result.rows


def test_pool_without_store_matches_serial(pinned_scenarios):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    pooled = ScenarioRunner().run_grid(pinned_scenarios, parallel=2)
    assert rows_of(pooled) == rows_of(serial)


def test_force_recomputes_but_keeps_rows(pinned_scenarios, tmp_path):
    store = SweepStore(str(tmp_path / "store"))
    runner = ScenarioRunner()
    first = runner.run_grid(pinned_scenarios, parallel=2, store=store)
    forced = runner.run_grid(pinned_scenarios, parallel=2, store=store,
                             force=True)
    assert all(not o.cached for o in forced)
    assert rows_of(forced) == rows_of(first)
    # and the overwritten entries still serve the same rows
    warm = runner.run_grid(pinned_scenarios, store=store)
    assert all(o.cached for o in warm)
    assert rows_of(warm) == rows_of(first)
