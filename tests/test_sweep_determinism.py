"""Every sweep substrate must produce bit-identical rows.

A pinned grid runs through all five execution paths —

* serial ``run_grid`` (``processes=1``: plain in-process loop),
* the fork-based ``WhatIfSession.sweep`` fan-out (``processes=2``),
* the process-pool batch executor (``parallel=2`` + a fresh store),
* the **spawn**-context batch executor (``start_method="spawn"``: fresh
  interpreters rebuilding the runtime-registered model from a pickled
  ``WorkerManifest``),
* a warm re-run served entirely from the store —

and the resulting ``ExperimentResult`` rows are compared with ``==``,
float for float.  This is the contract that makes the persistent store
trustworthy and the executor portable: a cached number *is* the number a
cold run would produce, on any platform's start method.
"""

import multiprocessing
import pickle

import pytest

from helpers import make_tiny_model
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import (
    OptimizationRegistry,
    OptimizationSpec,
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    SweepStore,
    WorkerManifest,
)

MODEL = "tinysweep"


def build_tinysweep(batch_size=None):
    """Module-level builder: spawn workers re-import it by name."""
    return make_tiny_model(batch=batch_size or 4)


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    try:
        register_model(MODEL, build_tinysweep)
    except ConfigError:
        pass  # already registered by an earlier module in this process


@pytest.fixture(scope="module")
def pinned_scenarios():
    grid = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={
            "cluster.bandwidth_gbps": [10.0, 25.0],
            "cluster.machines": [2, 4],
        },
    )
    # one baseline-only cell exercises the no-prediction path everywhere
    return grid.expand() + [Scenario(model=MODEL)]


def rows_of(outcomes):
    return [o.as_row() for o in outcomes]


def test_serial_fork_pool_and_cache_rows_identical(pinned_scenarios,
                                                   tmp_path):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    forked = ScenarioRunner().run_grid(pinned_scenarios, processes=2)

    store = SweepStore(str(tmp_path / "store"))
    pooled = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                       store=store)
    cached = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                       store=store)

    reference = rows_of(serial)
    assert rows_of(forked) == reference
    assert rows_of(pooled) == reference
    assert rows_of(cached) == reference

    assert all(not o.cached for o in pooled)
    assert all(o.cached for o in cached)
    # detached outcomes still resolve model/config/cluster for consumers
    assert all(o.model.name for o in pooled)
    assert cached[0].cluster is not None and cached[-1].cluster is None

    # the full ExperimentResult (headers + rows) is identical too
    serial_result = ScenarioRunner.to_result(serial)
    cached_result = ScenarioRunner.to_result(cached)
    assert serial_result.headers == cached_result.headers
    assert serial_result.rows == cached_result.rows


def test_pool_without_store_matches_serial(pinned_scenarios):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    pooled = ScenarioRunner().run_grid(pinned_scenarios, parallel=2)
    assert rows_of(pooled) == rows_of(serial)


def test_force_recomputes_but_keeps_rows(pinned_scenarios, tmp_path):
    store = SweepStore(str(tmp_path / "store"))
    runner = ScenarioRunner()
    first = runner.run_grid(pinned_scenarios, parallel=2, store=store)
    forced = runner.run_grid(pinned_scenarios, parallel=2, store=store,
                             force=True)
    assert all(not o.cached for o in forced)
    assert rows_of(forced) == rows_of(first)
    # and the overwritten entries still serve the same rows
    warm = runner.run_grid(pinned_scenarios, store=store)
    assert all(o.cached for o in warm)
    assert rows_of(warm) == rows_of(first)


# ------------------------------------------------------------ spawn context

@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="platform has no spawn start method")
def test_spawn_rows_identical_with_runtime_registered_model(
        pinned_scenarios, tmp_path):
    """Spawn workers rebuild ``tinysweep`` from the WorkerManifest.

    The grid's workload only exists via a runtime ``register_model`` call
    in *this* process; fresh spawn interpreters know nothing about it.
    The rows must still be bit-identical to every other path, and a store
    populated under spawn must serve a warm fork/serial run.
    """
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    store = SweepStore(str(tmp_path / "store"))
    spawned = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                        store=store, start_method="spawn")
    assert rows_of(spawned) == rows_of(serial)
    assert all(not o.cached for o in spawned)
    # entries written under spawn are served verbatim to any later path
    warm = ScenarioRunner().run_grid(pinned_scenarios, store=store)
    assert all(o.cached for o in warm)
    assert rows_of(warm) == rows_of(serial)


def test_explicit_serial_start_method_matches(pinned_scenarios):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    inproc = ScenarioRunner().run_grid(pinned_scenarios, parallel=4,
                                       start_method="serial")
    assert rows_of(inproc) == rows_of(serial)


def test_unknown_start_method_is_rejected(pinned_scenarios):
    with pytest.raises(ConfigError):
        ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                  start_method="threads")


# ----------------------------------------------------------- WorkerManifest

def test_manifest_round_trips_runtime_model(register_tiny_model):
    manifest = WorkerManifest.capture(model_names=[MODEL])
    assert dict(manifest.models)[MODEL] is build_tinysweep
    clone = pickle.loads(manifest.dumps())
    registry = clone.restore()
    assert registry.fingerprint() == manifest.fingerprint
    # the restored builder is the same importable callable
    from repro.models.registry import build_model
    assert build_model(MODEL).name == build_tinysweep().name


def test_manifest_scopes_models_to_the_grid():
    # an unrelated (possibly unpicklable) registration must not ride along
    try:
        register_model("tinysweep-unrelated", lambda batch_size=None:
                       make_tiny_model(batch=batch_size or 2))
    except ConfigError:
        pass
    manifest = WorkerManifest.capture(model_names=[MODEL])
    assert [name for name, _ in manifest.models] == [MODEL]
    manifest.dumps()  # picklable because the lambda was scoped out


def test_manifest_carries_custom_registry_specs():
    custom = OptimizationRegistry()
    custom.register(OptimizationSpec(
        key="amp", factory=AutomaticMixedPrecision,
        summary="module-level factory: crosses a spawn boundary"))
    manifest = WorkerManifest.capture(custom, model_names=[])
    assert not manifest.default_registry
    assert [spec.key for spec in manifest.specs] == ["amp"]
    clone = pickle.loads(manifest.dumps())
    rebuilt = clone.restore()
    assert rebuilt.fingerprint() == custom.fingerprint()
    assert "amp" in rebuilt and len(rebuilt.keys()) == 1


def test_manifest_rejects_unpicklable_registrations():
    custom = OptimizationRegistry()
    custom.register(OptimizationSpec(
        key="closure", factory=lambda: AutomaticMixedPrecision(),
        summary="lambdas cannot cross a spawn boundary"))
    manifest = WorkerManifest.capture(custom, model_names=[])
    with pytest.raises(ConfigError, match="module-level"):
        manifest.dumps()


def test_manifest_fingerprint_skew_fails_loudly():
    manifest = WorkerManifest.capture(model_names=[])
    skewed = WorkerManifest(fingerprint="not-the-real-fingerprint",
                            default_registry=manifest.default_registry,
                            specs=manifest.specs, models=manifest.models)
    with pytest.raises(ConfigError, match="fingerprint"):
        skewed.restore()
