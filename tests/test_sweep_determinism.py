"""Every sweep substrate must produce bit-identical rows.

A pinned grid runs through all eight execution paths —

* serial ``run_grid`` (``processes=1``: plain in-process loop),
* the fork-based ``WhatIfSession.sweep`` fan-out (``processes=2``),
* the process-pool batch executor (``parallel=2`` + a fresh store),
* the **spawn**-context batch executor (``start_method="spawn"``: fresh
  interpreters rebuilding the runtime-registered model — and any
  runtime-registered schedule policy — from a pickled
  ``WorkerManifest``),
* a warm re-run served entirely from the store,
* a warm re-run served entirely **read-through from a remote store
  server** (entries pushed, the local cache empty),
* a **cross-host** run: host A sweeps against a hub through the remote
  coordination plane (compute leases claimed, cells published at record
  time), then a cold host B on a different store root is served every
  cell from the hub,
* a **chaos** run under injected faults: a worker hard-killed by the
  :mod:`repro.scenarios.faults` kill hook while the remote tier
  corrupts, truncates and errors planned reads — the sweep must
  complete without intervention, account for every cell, and still
  match serial —

and the resulting ``ExperimentResult`` rows are compared with ``==``,
float for float.  This is the contract that makes the persistent store
trustworthy, the executor portable, the remote tier shareable, and the
recovery paths safe: a cached number *is* the number a cold run would
produce, on any platform's start method, served from any tier, even
when the infrastructure underneath is actively failing.
"""

import multiprocessing
import pickle

import pytest

from helpers import make_tiny_model
from repro.common.errors import ConfigError
from repro.core.simulate import make_priority_scheduler
from repro.models.registry import register_model
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import (
    OptimizationRegistry,
    OptimizationSpec,
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    StoreServer,
    SweepStore,
    WorkerManifest,
    register_schedule_policy,
)

MODEL = "tinysweep"


def build_tinysweep(batch_size=None):
    """Module-level builder: spawn workers re-import it by name."""
    return make_tiny_model(batch=batch_size or 4)


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    try:
        register_model(MODEL, build_tinysweep)
    except ConfigError:
        pass  # already registered by an earlier module in this process


@pytest.fixture(scope="module")
def pinned_scenarios():
    grid = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={
            "cluster.bandwidth_gbps": [10.0, 25.0],
            "cluster.machines": [2, 4],
        },
    )
    # one baseline-only cell exercises the no-prediction path everywhere
    return grid.expand() + [Scenario(model=MODEL)]


def rows_of(outcomes):
    return [o.as_row() for o in outcomes]


def test_serial_fork_pool_and_cache_rows_identical(pinned_scenarios,
                                                   tmp_path):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    forked = ScenarioRunner().run_grid(pinned_scenarios, processes=2)

    store = SweepStore(str(tmp_path / "store"))
    pooled = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                       store=store)
    cached = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                       store=store)

    reference = rows_of(serial)
    assert rows_of(forked) == reference
    assert rows_of(pooled) == reference
    assert rows_of(cached) == reference

    assert all(not o.cached for o in pooled)
    assert all(o.cached for o in cached)
    # detached outcomes still resolve model/config/cluster for consumers
    assert all(o.model.name for o in pooled)
    assert cached[0].cluster is not None and cached[-1].cluster is None

    # the full ExperimentResult (headers + rows) is identical too
    serial_result = ScenarioRunner.to_result(serial)
    cached_result = ScenarioRunner.to_result(cached)
    assert serial_result.headers == cached_result.headers
    assert serial_result.rows == cached_result.rows


def test_pool_without_store_matches_serial(pinned_scenarios):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    pooled = ScenarioRunner().run_grid(pinned_scenarios, parallel=2)
    assert rows_of(pooled) == rows_of(serial)


def test_force_recomputes_but_keeps_rows(pinned_scenarios, tmp_path):
    store = SweepStore(str(tmp_path / "store"))
    runner = ScenarioRunner()
    first = runner.run_grid(pinned_scenarios, parallel=2, store=store)
    forced = runner.run_grid(pinned_scenarios, parallel=2, store=store,
                             force=True)
    assert all(not o.cached for o in forced)
    assert rows_of(forced) == rows_of(first)
    # and the overwritten entries still serve the same rows
    warm = runner.run_grid(pinned_scenarios, store=store)
    assert all(o.cached for o in warm)
    assert rows_of(warm) == rows_of(first)


# ------------------------------------------------------------ spawn context

@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="platform has no spawn start method")
def test_spawn_rows_identical_with_runtime_registered_model(
        pinned_scenarios, tmp_path):
    """Spawn workers rebuild ``tinysweep`` from the WorkerManifest.

    The grid's workload only exists via a runtime ``register_model`` call
    in *this* process; fresh spawn interpreters know nothing about it.
    The rows must still be bit-identical to every other path, and a store
    populated under spawn must serve a warm fork/serial run.
    """
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    store = SweepStore(str(tmp_path / "store"))
    spawned = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                        store=store, start_method="spawn")
    assert rows_of(spawned) == rows_of(serial)
    assert all(not o.cached for o in spawned)
    # entries written under spawn are served verbatim to any later path
    warm = ScenarioRunner().run_grid(pinned_scenarios, store=store)
    assert all(o.cached for o in warm)
    assert rows_of(warm) == rows_of(serial)


def test_remote_warm_rows_identical(pinned_scenarios, tmp_path):
    """The sixth path: every cell served read-through from a remote
    server into an empty local cache must be bit-identical to serial."""
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                              store=publisher)
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        publisher.push(server.url)
        consumer = SweepStore(str(tmp_path / "consumer"),
                              remote=server.url)
        remote_warm = ScenarioRunner().run_grid(pinned_scenarios,
                                                store=consumer)
    assert rows_of(remote_warm) == rows_of(serial)
    assert all(o.cached for o in remote_warm)
    assert consumer.stats.remote_hits == len(pinned_scenarios)


def test_cross_host_warm_rows_identical(pinned_scenarios, tmp_path):
    """The eighth path: rows that crossed hosts through the coordination
    plane.  Host A sweeps against the hub (remote compute leases claimed,
    every computed cell published at record time); host B, cold and on a
    different store root, must then be served every cell from the hub —
    bit-identical to serial, with zero re-simulations anywhere."""
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        host_a = SweepStore(str(tmp_path / "host-a"), remote=server.url)
        computed = ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                             store=host_a)
        assert rows_of(computed) == rows_of(serial)
        assert all(not o.cached for o in computed)
        # record-time publishing: the hub is warm without a push
        assert host_a.stats.published == len(pinned_scenarios)

        host_b = SweepStore(str(tmp_path / "host-b"), remote=server.url)
        warm = ScenarioRunner().run_grid(pinned_scenarios, store=host_b)
    assert rows_of(warm) == rows_of(serial)
    assert all(o.cached for o in warm)
    assert host_b.stats.remote_hits == len(pinned_scenarios)
    assert host_b.stats.remote_rejected == 0


def test_chaos_rows_identical_under_injected_faults(pinned_scenarios,
                                                    tmp_path, monkeypatch):
    """The seventh path: crashes and backend faults must not cost a bit.

    The remote tier corrupts the first read, truncates the second and
    errors the third (so three cells re-simulate while two serve
    read-through), and the kill plan SIGKILLs a worker at the first
    computed cell.  The sweep must complete without intervention, the
    report must account for every cell, and the rows must be
    bit-identical to serial.
    """
    import os

    from repro.scenarios import (
        KILL_PLAN_ENV,
        FaultInjectingBackend,
        FaultPlan,
        FaultRule,
        KillPlan,
        LocalBackend,
        run_batch,
    )

    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    publisher = SweepStore(str(tmp_path / "publisher"))
    ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                              store=publisher)

    plan = FaultPlan(rules=(
        FaultRule(op="get", nth=1, action="corrupt"),
        FaultRule(op="get", nth=2, action="truncate"),
        FaultRule(op="get", nth=3, action="error"),
    ), seed=7)
    faulty_remote = FaultInjectingBackend(LocalBackend(publisher.root),
                                          plan)
    kills = KillPlan(cell=0, times=1, claim_dir=str(tmp_path / "claims"))
    monkeypatch.setenv(KILL_PLAN_ENV, kills.to_json())

    consumer = SweepStore(str(tmp_path / "consumer"), remote=faulty_remote)
    report = run_batch(pinned_scenarios, store=consumer, jobs=2)

    runner = ScenarioRunner()
    chaos_rows = [runner.detached_outcome(c.scenario, c.baseline_us,
                                          c.predicted_us,
                                          cached=c.cached).as_row()
                  for c in report.cells]
    assert chaos_rows == rows_of(serial)

    # every planned fault actually fired, in order
    assert faulty_remote.injected == ["get#1:corrupt", "get#2:truncate",
                                      "get#3:error"]
    # ...and the worker kill actually landed (and was spent exactly once)
    assert report.pool_rebuilds >= 1 and report.retried >= 1
    assert len(os.listdir(kills.claim_dir)) == 1

    # the report accounts for every cell: two served read-through, three
    # re-simulated (their remote reads were corrupt/truncated/errored)
    assert len(report.cells) == len(pinned_scenarios)
    assert report.failed == 0 and report.failures == []
    assert report.hits == 2 and report.computed == 3
    assert consumer.stats.remote_rejected == 2  # corrupt + truncate
    assert consumer.stats.remote_faults == 1    # the injected error
    assert consumer.stats.remote_hits == 2


def test_explicit_serial_start_method_matches(pinned_scenarios):
    serial = ScenarioRunner().run_grid(pinned_scenarios, processes=1)
    inproc = ScenarioRunner().run_grid(pinned_scenarios, parallel=4,
                                       start_method="serial")
    assert rows_of(inproc) == rows_of(serial)


def test_unknown_start_method_is_rejected(pinned_scenarios):
    with pytest.raises(ConfigError):
        ScenarioRunner().run_grid(pinned_scenarios, parallel=2,
                                  start_method="threads")


# ----------------------------------------- runtime-registered schedule policy

POLICY = "tinysweep_comm_first"


def build_comm_first_policy():
    """Module-level factory: spawn workers re-import it by name."""
    return make_priority_scheduler(lambda t: t.is_comm)


@pytest.fixture
def comm_first_policy():
    register_schedule_policy(POLICY, build_comm_first_policy,
                             overwrite=True)
    return POLICY


@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="platform has no spawn start method")
def test_spawn_rows_identical_with_runtime_schedule_policy(
        comm_first_policy, tmp_path):
    """Spawn workers rebuild the policy from the WorkerManifest.

    The scenarios declare a schedule policy that only exists via a
    runtime ``register_schedule_policy`` call in *this* process; a fresh
    spawn interpreter would reject them at validation.  The manifest
    must carry the factory across, and the rows must stay bit-identical
    to the serial path.
    """
    scenarios = [
        Scenario(model=MODEL, optimizations=["distributed_training"],
                 schedule_policy=POLICY).with_cluster(
                     2, 1, bandwidth_gbps=10.0),
        Scenario(model=MODEL, schedule_policy=POLICY),
    ]
    serial = ScenarioRunner().run_grid(scenarios, processes=1)
    store = SweepStore(str(tmp_path / "store"))
    spawned = ScenarioRunner().run_grid(scenarios, parallel=2, store=store,
                                        start_method="spawn")
    assert rows_of(spawned) == rows_of(serial)
    assert all(not o.cached for o in spawned)


# ----------------------------------------------------------- WorkerManifest

def test_manifest_round_trips_runtime_model(register_tiny_model):
    manifest = WorkerManifest.capture(model_names=[MODEL])
    assert dict(manifest.models)[MODEL] is build_tinysweep
    clone = pickle.loads(manifest.dumps())
    registry = clone.restore()
    assert registry.fingerprint() == manifest.fingerprint
    # the restored builder is the same importable callable
    from repro.models.registry import build_model
    assert build_model(MODEL).name == build_tinysweep().name


def test_manifest_scopes_models_to_the_grid():
    # an unrelated (possibly unpicklable) registration must not ride along
    try:
        register_model("tinysweep-unrelated", lambda batch_size=None:
                       make_tiny_model(batch=batch_size or 2))
    except ConfigError:
        pass
    manifest = WorkerManifest.capture(model_names=[MODEL])
    assert [name for name, _ in manifest.models] == [MODEL]
    manifest.dumps()  # picklable because the lambda was scoped out


def test_manifest_carries_custom_registry_specs():
    custom = OptimizationRegistry()
    custom.register(OptimizationSpec(
        key="amp", factory=AutomaticMixedPrecision,
        summary="module-level factory: crosses a spawn boundary"))
    manifest = WorkerManifest.capture(custom, model_names=[])
    assert not manifest.default_registry
    assert [spec.key for spec in manifest.specs] == ["amp"]
    clone = pickle.loads(manifest.dumps())
    rebuilt = clone.restore()
    assert rebuilt.fingerprint() == custom.fingerprint()
    assert "amp" in rebuilt and len(rebuilt.keys()) == 1


def test_manifest_rejects_unpicklable_registrations():
    custom = OptimizationRegistry()
    custom.register(OptimizationSpec(
        key="closure", factory=lambda: AutomaticMixedPrecision(),
        summary="lambdas cannot cross a spawn boundary"))
    manifest = WorkerManifest.capture(custom, model_names=[])
    with pytest.raises(ConfigError, match="module-level"):
        manifest.dumps()


def test_manifest_carries_runtime_schedule_policies(comm_first_policy):
    from repro.scenarios import NAMED_SCHEDULE_POLICIES
    manifest = WorkerManifest.capture(model_names=[],
                                      policy_names=[POLICY])
    assert dict(manifest.schedule_policies)[POLICY] \
        is build_comm_first_policy
    clone = pickle.loads(manifest.dumps())
    del NAMED_SCHEDULE_POLICIES[POLICY]  # simulate a fresh interpreter
    clone.restore()
    assert NAMED_SCHEDULE_POLICIES[POLICY] is build_comm_first_policy


def test_manifest_scopes_policies_to_the_grid(comm_first_policy):
    from repro.scenarios import NAMED_SCHEDULE_POLICIES

    # an unrelated (unpicklable) policy registration must not ride along
    register_schedule_policy(
        "tinysweep_unrelated",
        lambda: make_priority_scheduler(lambda t: t.is_comm),
        overwrite=True)
    try:
        manifest = WorkerManifest.capture(model_names=[],
                                          policy_names=[POLICY])
        assert [name for name, _ in manifest.schedule_policies] == [POLICY]
        manifest.dumps()  # picklable because the lambda was scoped out
    finally:
        del NAMED_SCHEDULE_POLICIES["tinysweep_unrelated"]


def test_builtin_policies_never_ride_the_manifest():
    # comm_priority ships with the package (and is a lambda: unpicklable);
    # spawn workers already have it, so capture must not carry it
    manifest = WorkerManifest.capture(model_names=[], policy_names=None)
    names = [name for name, _ in manifest.schedule_policies]
    assert "comm_priority" not in names


def test_overwritten_builtin_policy_counts_as_runtime_state():
    # identity, not name: a builtin replaced with a custom factory must
    # ride the manifest, or spawn workers silently run the shipped one
    # under the same name (and cache different rows under one key)
    from repro.scenarios import NAMED_SCHEDULE_POLICIES
    original = NAMED_SCHEDULE_POLICIES["comm_priority"]
    register_schedule_policy("comm_priority", build_comm_first_policy,
                             overwrite=True)
    try:
        manifest = WorkerManifest.capture(
            model_names=[], policy_names=["comm_priority"])
        assert dict(manifest.schedule_policies)["comm_priority"] \
            is build_comm_first_policy
        manifest.dumps()  # a module-level override crosses spawn fine
    finally:
        NAMED_SCHEDULE_POLICIES["comm_priority"] = original


def test_duplicate_policy_registration_is_rejected(comm_first_policy):
    with pytest.raises(ConfigError, match="already registered"):
        register_schedule_policy(POLICY, build_comm_first_policy)


def test_manifest_fingerprint_skew_fails_loudly():
    manifest = WorkerManifest.capture(model_names=[])
    skewed = WorkerManifest(fingerprint="not-the-real-fingerprint",
                            default_registry=manifest.default_registry,
                            specs=manifest.specs, models=manifest.models)
    with pytest.raises(ConfigError, match="fingerprint"):
        skewed.restore()
