"""The fault-injection harness itself must be trustworthy and replayable.

Chaos results are only as meaningful as the faults are controlled: a rule
that fires on the wrong invocation, a corruption that differs between
runs, or a kill hook that fires in the parent would make the chaos suite
flaky instead of damning.  This file pins the injector: rules target the
exact nth invocation, corruption is a pure function of the plan seed,
plans survive the JSON round trip, the injected-fault journal records
exactly what fired, and the SIGKILL hook honors its cross-process budget
while staying inert without the env var.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.common.errors import ConfigError
from repro.scenarios import (
    KILL_PLAN_ENV,
    FaultInjectingBackend,
    FaultPlan,
    FaultRule,
    InjectedFault,
    KillPlan,
    LocalBackend,
    maybe_kill_worker,
)

KEY_A = "aa" * 16
KEY_B = "bb" * 16


@pytest.fixture
def backend(tmp_path):
    inner = LocalBackend(str(tmp_path / "store"))
    inner.put(KEY_A, b"payload-a" * 16)
    inner.put(KEY_B, b"payload-b" * 16)
    return inner


# ----------------------------------------------------------------- targeting

def test_rules_fire_on_the_exact_nth_invocation(backend):
    plan = FaultPlan(rules=(FaultRule(op="get", nth=2, action="error"),))
    faulty = FaultInjectingBackend(backend, plan)
    assert faulty.get(KEY_A) is not None        # invocation 1: clean
    with pytest.raises(InjectedFault):
        faulty.get(KEY_A)                       # invocation 2: planned
    assert faulty.get(KEY_A) is not None        # invocation 3: clean again
    assert faulty.injected == ["get#2:error"]


def test_count_zero_means_forever(backend):
    plan = FaultPlan(rules=(
        FaultRule(op="get", nth=2, action="error", count=0),))
    faulty = FaultInjectingBackend(backend, plan)
    assert faulty.get(KEY_A) is not None
    for _ in range(3):  # the server died and stays dead
        with pytest.raises(InjectedFault):
            faulty.get(KEY_A)


def test_ops_are_counted_independently(backend):
    plan = FaultPlan(rules=(FaultRule(op="put", nth=1, action="drop"),))
    faulty = FaultInjectingBackend(backend, plan)
    assert faulty.get(KEY_A) is not None  # get is not put's counter
    faulty.put(KEY_A, b"lost")            # dropped silently
    assert backend.get(KEY_A) != b"lost"
    faulty.put(KEY_A, b"landed")          # put #2 is past the rule
    assert backend.get(KEY_A) == b"landed"
    assert faulty.injected == ["put#1:drop"]


# ------------------------------------------------------------------- actions

def test_drop_reads_as_absent_without_touching_the_entry(backend):
    plan = FaultPlan(rules=(FaultRule(op="get", nth=1, action="drop"),))
    faulty = FaultInjectingBackend(backend, plan)
    assert faulty.get(KEY_A) is None
    assert backend.get(KEY_A) is not None  # the entry itself is untouched


def test_corrupt_is_deterministic_per_plan_seed(backend):
    plan = FaultPlan(rules=(FaultRule(op="get", nth=1, action="corrupt"),),
                     seed=3)
    original = backend.get(KEY_A)
    first = FaultInjectingBackend(backend, plan).get(KEY_A)
    second = FaultInjectingBackend(backend, plan).get(KEY_A)
    assert first != original          # actually mangled
    assert first == second            # identically both times
    other_seed = FaultPlan(rules=plan.rules, seed=4)
    assert FaultInjectingBackend(backend, other_seed).get(KEY_A) != first


def test_truncate_halves_the_payload(backend):
    plan = FaultPlan(rules=(FaultRule(op="get", nth=1, action="truncate"),))
    data = FaultInjectingBackend(backend, plan).get(KEY_A)
    assert len(data) == len(backend.get(KEY_A)) // 2


def test_fetch_proxies_and_faults_separately_from_get(backend):
    plan = FaultPlan(rules=(FaultRule(op="fetch", nth=1, action="error"),))
    faulty = FaultInjectingBackend(backend, plan)
    assert faulty.get(KEY_A) is not None  # get untouched
    with pytest.raises(InjectedFault):
        faulty.fetch(KEY_A)
    assert faulty.fetch(KEY_A) == backend.get(KEY_A)


def test_injected_fault_is_a_backend_error(backend):
    from repro.scenarios import BackendError
    assert issubclass(InjectedFault, BackendError)


# ------------------------------------------------------------- serialization

def test_plan_round_trips_through_json():
    plan = FaultPlan(rules=(
        FaultRule(op="get", nth=3, action="corrupt"),
        FaultRule(op="fetch", nth=1, action="error", count=0),
        FaultRule(op="put", nth=2, action="delay", delay_s=0.5),
    ), seed=11)
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_malformed_plans_are_rejected_loudly():
    with pytest.raises(ConfigError):
        FaultPlan.from_json("not json at all")
    with pytest.raises(ConfigError):
        FaultPlan.from_json(json.dumps({"seed": 1, "surprise": True}))
    with pytest.raises(ConfigError):
        FaultRule(op="teleport", nth=1, action="error")
    with pytest.raises(ConfigError):
        FaultRule(op="get", nth=0, action="error")
    with pytest.raises(ConfigError):
        FaultRule(op="get", nth=1, action="explode")


# ------------------------------------------------------------------ the hook

def test_kill_hook_is_inert_without_the_env_var(monkeypatch):
    monkeypatch.delenv(KILL_PLAN_ENV, raising=False)
    maybe_kill_worker(0)  # must simply return


def test_kill_hook_ignores_other_cells(monkeypatch, tmp_path):
    plan = KillPlan(cell=3, times=1, claim_dir=str(tmp_path / "claims"))
    monkeypatch.setenv(KILL_PLAN_ENV, plan.to_json())
    maybe_kill_worker(0)  # not the planned cell: survives


def test_malformed_kill_plan_raises(monkeypatch):
    monkeypatch.setenv(KILL_PLAN_ENV, '{"cell": "nope"}')
    with pytest.raises(ConfigError):
        KillPlan.from_env()


def test_kill_hook_sigkills_within_budget_then_spares(tmp_path):
    """A subprocess on the planned cell dies by SIGKILL; once the claim
    slots are spent, the same call survives — the bounded-retry story."""
    claim_dir = str(tmp_path / "claims")
    plan = KillPlan(cell=5, times=1, claim_dir=claim_dir)
    env = dict(os.environ, REPRO_CHAOS_KILL_PLAN=plan.to_json(),
               PYTHONPATH="src")
    code = ("from repro.scenarios import maybe_kill_worker; "
            "maybe_kill_worker(5); print('alive')")
    first = subprocess.run([sys.executable, "-c", code], env=env,
                           capture_output=True, cwd="/root/repo")
    assert first.returncode == -9  # SIGKILL, no Python teardown
    assert os.path.exists(os.path.join(claim_dir, "kill-0"))
    second = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, cwd="/root/repo")
    assert second.returncode == 0  # budget spent: the cell runs
    assert b"alive" in second.stdout
