"""Mechanical lint gate (ruff).

Runs the ruff rules configured in ``pyproject.toml`` over the source tree —
this is what keeps trivial defect classes (pointless f-strings, unused
imports, undefined names) from reappearing.  Skips cleanly on machines
without a ruff binary; CI images that carry ruff enforce it.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_ruff_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"
