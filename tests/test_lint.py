"""Mechanical lint gates.

Runs the ruff rules configured in ``pyproject.toml`` over the source tree —
this is what keeps trivial defect classes (pointless f-strings, unused
imports, undefined names) from reappearing.  Skips cleanly on machines
without a ruff binary; CI images that carry ruff enforce it.

Also guards the *repository contents*: 145 ``__pycache__`` bytecode files
were once committed by accident, so ``test_no_tracked_bytecode`` fails the
suite if any generated artifact is ever tracked again.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_ruff_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"


def test_no_tracked_bytecode():
    """No generated artifact may ever be committed again.

    ``.gitignore`` keeps honest contributors out; this gate catches a
    ``git add -f``, a broken ignore file, or tooling that bypasses both.
    """
    git = shutil.which("git")
    if git is None:
        pytest.skip("git not installed in this environment")
    proc = subprocess.run(
        [git, "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    if proc.returncode != 0:
        pytest.skip("not running from a git checkout")
    banned = ("__pycache__", ".pyc", ".pyo", ".pytest_cache",
              ".sweep-store")
    offenders = [
        line for line in proc.stdout.splitlines()
        if any(marker in line for marker in banned)
    ]
    assert not offenders, (
        "generated artifacts are tracked by git (remove with "
        f"'git rm --cached'): {offenders[:10]}"
    )
