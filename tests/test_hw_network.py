"""Tests for repro.hw.network and repro.hw.topology."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.hw.device import GPU_2080TI
from repro.hw.network import (
    NetworkSpec,
    allgather_time_us,
    ps_pull_time_us,
    ps_push_time_us,
    reduce_scatter_time_us,
    ring_allreduce_time_us,
)
from repro.hw.topology import ClusterSpec


class TestNetworkSpec:
    def test_bytes_per_us(self):
        assert NetworkSpec(10.0).bytes_per_us() == pytest.approx(1250.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            NetworkSpec(0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            NetworkSpec(10.0, latency_us=-1.0)


class TestRingAllReduce:
    def test_single_worker_free(self):
        assert ring_allreduce_time_us(1e6, 1, 1250.0) == 0.0

    def test_two_workers_transfer_one_payload(self):
        # 2(n-1)/n = 1.0 for n=2
        assert ring_allreduce_time_us(1e6, 2, 1250.0) == pytest.approx(800.0)

    def test_asymptote_is_double_payload(self):
        big_n = ring_allreduce_time_us(1e6, 1000, 1250.0)
        assert big_n == pytest.approx(2 * 1e6 / 1250.0, rel=0.01)

    def test_latency_term(self):
        with_lat = ring_allreduce_time_us(0.0, 4, 1250.0, latency_us=10.0)
        assert with_lat == pytest.approx(2 * 3 * 10.0)

    @given(st.integers(min_value=2, max_value=64))
    def test_monotone_in_workers(self, n):
        t1 = ring_allreduce_time_us(1e6, n, 1250.0)
        t2 = ring_allreduce_time_us(1e6, n + 1, 1250.0)
        assert t2 >= t1

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_monotone_in_size(self, size):
        t1 = ring_allreduce_time_us(size, 4, 1250.0)
        t2 = ring_allreduce_time_us(size + 1000, 4, 1250.0)
        assert t2 >= t1

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigError):
            ring_allreduce_time_us(1e6, 0, 1250.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            ring_allreduce_time_us(-1, 2, 1250.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            ring_allreduce_time_us(1e6, 2, 0.0)


class TestRingHalves:
    def test_reduce_scatter_plus_allgather_equals_allreduce(self):
        size, n, bw = 1e7, 8, 2500.0
        combined = (reduce_scatter_time_us(size, n, bw)
                    + allgather_time_us(size, n, bw))
        assert combined == pytest.approx(ring_allreduce_time_us(size, n, bw))

    def test_single_worker_free(self):
        assert reduce_scatter_time_us(1e6, 1, 1250.0) == 0.0
        assert allgather_time_us(1e6, 1, 1250.0) == 0.0


class TestParameterServer:
    def test_push_is_wire_time_plus_latency(self):
        assert ps_push_time_us(1e6, 1250.0, latency_us=25.0) == pytest.approx(
            825.0)

    def test_pull_matches_push(self):
        assert ps_pull_time_us(5e5, 1250.0) == ps_push_time_us(5e5, 1250.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            ps_push_time_us(-1, 1250.0)
        with pytest.raises(ConfigError):
            ps_push_time_us(1e6, 0.0)


class TestClusterSpec:
    def _cluster(self, machines, gpus, bw=10.0):
        return ClusterSpec(machines, gpus, GPU_2080TI, NetworkSpec(bw))

    def test_worker_count(self):
        assert self._cluster(4, 2).n_workers == 8

    def test_single_machine_uses_pcie(self):
        single = self._cluster(1, 4)
        assert not single.crosses_network
        assert single.ring_link_bytes_per_us() == pytest.approx(
            GPU_2080TI.pcie_bytes_per_us())

    def test_nic_shared_between_gpus(self):
        one = self._cluster(2, 1)
        two = self._cluster(2, 2)
        assert two.ring_link_bytes_per_us() == pytest.approx(
            one.ring_link_bytes_per_us() / 2)

    def test_single_worker_has_no_ring(self):
        with pytest.raises(ConfigError):
            self._cluster(1, 1).ring_link_bytes_per_us()

    def test_label(self):
        assert self._cluster(3, 2).label() == "3x2"

    def test_rejects_zero_machines(self):
        with pytest.raises(ConfigError):
            self._cluster(0, 1)

    def test_is_distributed(self):
        assert not self._cluster(1, 1).is_distributed
        assert self._cluster(1, 2).is_distributed
