"""Tests for the data-loader worker thread (Figure 1's second CPU thread)."""

import pytest

from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.core.task import TaskKind
from repro.framework.config import TrainingConfig
from repro.framework.engine import profile_iteration
from repro.tracing.records import EventCategory, cpu_thread

from helpers import make_tiny_model


class TestDataLoaderThread:
    def test_dataload_on_worker_thread(self, tiny_trace):
        (load,) = tiny_trace.by_category(EventCategory.DATALOAD)
        assert load.thread == cpu_thread(1)

    def test_two_cpu_threads_visible(self, tiny_trace):
        cpu_threads = [t for t in tiny_trace.threads() if t.is_cpu]
        assert len(cpu_threads) == 2

    def test_upload_waits_for_batch(self, tiny_trace):
        (load,) = tiny_trace.by_category(EventCategory.DATALOAD)
        uploads = [e for e in tiny_trace.by_category(EventCategory.RUNTIME)
                   if e.name == "cudaMemcpyAsync"]
        first_upload = min(uploads, key=lambda e: e.start_us)
        assert first_upload.start_us >= load.end_us - 1e-6

    def test_construction_wires_dataload_edge(self, tiny_trace):
        graph = build_graph(tiny_trace)
        load = next(t for t in graph.tasks()
                    if t.kind is TaskKind.DATALOAD)
        succs = graph.successors(load)
        assert succs, "data load must gate the batch upload"
        assert any(s.is_cpu for s in succs)

    def test_replay_fidelity_preserved(self, tiny_trace):
        makespan = simulate(build_graph(tiny_trace)).makespan_us
        assert makespan == pytest.approx(tiny_trace.duration_us, rel=0.01)

    def test_slow_loader_delays_iteration(self):
        model = make_tiny_model()
        fast = profile_iteration(model, TrainingConfig(data_loading_us=100.0))
        slow = profile_iteration(model,
                                 TrainingConfig(data_loading_us=50_000.0))
        assert (slow.duration_us - fast.duration_us) > 40_000.0

    def test_what_if_faster_loader(self, tiny_trace):
        """Shrinking the loader task answers 'is IO my bottleneck?'."""
        graph = build_graph(tiny_trace)
        load = next(t for t in graph.tasks()
                    if t.kind is TaskKind.DATALOAD)
        baseline = simulate(graph).makespan_us
        load.duration = 0.0
        assert simulate(graph).makespan_us <= baseline
