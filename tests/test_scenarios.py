"""Tests for the declarative scenario layer.

Covers the optimization registry (round-trip of every shipped model),
pipeline composition rules (ordering, slot/scheduler conflicts,
prerequisites), Scenario/ScenarioGrid serialization equality, the runner,
and the CLI surfaces built on top.
"""

import json

import pytest

from repro.__main__ import main
from repro.common.errors import ConfigError
from repro.optimizations import (
    AutomaticMixedPrecision,
    DistributedTraining,
    Gist,
)
from repro.optimizations.base import OptimizationModel
from repro.scenarios import (
    DEFAULT_REGISTRY,
    ClusterShape,
    OptimizationPipeline,
    PipelineError,
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    load_scenario_file,
)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

class TestRegistry:
    def test_every_shipped_optimization_registered(self):
        assert set(DEFAULT_REGISTRY.keys()) >= {
            "amp", "fused_adam", "reconstruct_batchnorm", "metaflow",
            "gpu_upgrade", "cpu_upgrade", "vdnn", "gist",
            "distributed_training", "parameter_server", "p3",
            "blueconnect", "dgc",
        }

    def test_create_default_for_every_key(self):
        for key in DEFAULT_REGISTRY.keys():
            model = DEFAULT_REGISTRY.create(key)
            assert isinstance(model, OptimizationModel), key

    def test_round_trip_every_shipped_optimization(self):
        """Declaring each optimization with its documented defaults builds
        an instance identical to the bare-key default instance."""
        for spec in DEFAULT_REGISTRY.specs():
            bare = DEFAULT_REGISTRY.create(spec.key)
            declared = DEFAULT_REGISTRY.create({
                "name": spec.key,
                "params": {p.name: p.default for p in spec.params},
            })
            assert type(declared) is type(bare), spec.key
            assert vars(declared) == vars(bare), spec.key

    def test_unknown_key(self):
        with pytest.raises(ConfigError, match="unknown optimization"):
            DEFAULT_REGISTRY.create("warp_drive")

    def test_unknown_param(self):
        with pytest.raises(ConfigError, match="no parameter"):
            DEFAULT_REGISTRY.create({"name": "amp",
                                     "params": {"warp_factor": 9}})

    def test_param_type_checked(self):
        with pytest.raises(ConfigError, match="expects float"):
            DEFAULT_REGISTRY.create({"name": "amp",
                                     "params": {"compute_shrink": "fast"}})

    def test_param_int_widens_to_float(self):
        model = DEFAULT_REGISTRY.create({"name": "amp",
                                         "params": {"compute_shrink": 4}})
        assert model.compute_shrink == 4.0

    def test_null_param_keeps_default(self):
        from repro.optimizations.p3 import DEFAULT_SLICE_BYTES
        model = DEFAULT_REGISTRY.create({"name": "p3",
                                         "params": {"slice_bytes": None}})
        assert model.slice_bytes == DEFAULT_SLICE_BYTES
        model = DEFAULT_REGISTRY.create({"name": "gpu_upgrade",
                                         "params": {"factor": None}})
        assert model.factor == 1.5

    def test_bad_entry_shapes(self):
        with pytest.raises(ConfigError):
            DEFAULT_REGISTRY.parse_entry({"params": {}})
        with pytest.raises(ConfigError):
            DEFAULT_REGISTRY.parse_entry({"name": "amp", "extra": 1})
        with pytest.raises(ConfigError):
            DEFAULT_REGISTRY.parse_entry(42)

    def test_whatif_defaults_respect_applicability(self):
        resnet_meta = {"optimizer": "sgd",
                       "layer_kinds": {"c": "conv", "r": "relu",
                                       "b": "batchnorm"}}
        keys = {type(m).__name__
                for m in DEFAULT_REGISTRY.whatif_defaults(resnet_meta)}
        assert "FusedAdam" not in keys
        assert {"AutomaticMixedPrecision", "Gist",
                "VirtualizedDNN"} <= keys

        adam_meta = {"optimizer": "adam", "layer_kinds": {"l": "linear"}}
        keys = {type(m).__name__
                for m in DEFAULT_REGISTRY.whatif_defaults(adam_meta)}
        assert "FusedAdam" in keys
        assert "VirtualizedDNN" not in keys  # no conv layers to offload


# --------------------------------------------------------------------------
# pipeline composition
# --------------------------------------------------------------------------

class TestPipeline:
    def test_orders_categories(self):
        pipeline = OptimizationPipeline(
            ["blueconnect", "gist", "distributed_training", "amp"])
        assert pipeline.describe() == [
            "amp", "gist", "distributed_training", "blueconnect"]

    def test_order_is_stable_within_category(self):
        pipeline = OptimizationPipeline(["vdnn", "gist"])
        assert pipeline.describe() == ["vdnn", "gist"]

    def test_memory_before_communication(self):
        pipeline = OptimizationPipeline(["distributed_training", "vdnn"])
        assert pipeline.describe() == ["vdnn", "distributed_training"]

    def test_comm_rewrite_requires_comm_insert(self):
        with pytest.raises(PipelineError, match="earlier in the stack"):
            OptimizationPipeline(["blueconnect"])
        with pytest.raises(PipelineError, match="earlier in the stack"):
            OptimizationPipeline(["dgc", "amp"])

    def test_gradient_sync_slot_conflict(self):
        with pytest.raises(PipelineError, match="gradient_sync"):
            OptimizationPipeline(["distributed_training", "p3"])

    def test_two_parameter_server_variants_conflict(self):
        # p3 and parameter_server collide on BOTH the gradient-sync slot and
        # the scheduler; the slot rule fires first
        with pytest.raises(PipelineError):
            OptimizationPipeline(["p3", "parameter_server"])

    def test_scheduler_conflict(self):
        from repro.optimizations.p3 import (
            ParameterServerTransfer,
            PriorityParameterPropagation,
        )
        from repro.scenarios.registry import (
            OptimizationRegistry,
            OptimizationSpec,
        )
        registry = OptimizationRegistry()
        registry.register(OptimizationSpec(
            key="sched_a", factory=PriorityParameterPropagation, summary="",
            category="comm_insert", provides_scheduler=True))
        registry.register(OptimizationSpec(
            key="sched_b", factory=ParameterServerTransfer, summary="",
            category="comm_insert", provides_scheduler=True))
        with pytest.raises(PipelineError, match="schedule override"):
            OptimizationPipeline(["sched_a", "sched_b"], registry=registry)

    def test_scenario_policy_conflicts_with_stack_scheduler(self):
        scenario = Scenario(model="resnet50", optimizations=["p3"],
                            schedule_policy="comm_priority")
        with pytest.raises(PipelineError, match="schedule override"):
            scenario.build_pipeline()

    def test_scenario_policy_composes_with_plain_stack(self):
        scenario = Scenario(model="resnet50", optimizations=["amp"],
                            schedule_policy="comm_priority")
        pipeline = scenario.build_pipeline()
        assert "schedule[comm_priority]" in pipeline.describe()

    def test_accepts_prebuilt_instances(self):
        pipeline = OptimizationPipeline(
            [DistributedTraining(), AutomaticMixedPrecision()])
        assert pipeline.describe() == ["amp", "distributed_training"]
        assert pipeline.requires_cluster

    def test_empty_stack(self):
        pipeline = OptimizationPipeline([])
        assert len(pipeline) == 0
        assert pipeline.name == "baseline"
        assert not pipeline.requires_cluster

    def test_apply_equals_sequential_application(self, tiny_model):
        from repro.analysis.session import WhatIfSession
        from repro.core.simulate import simulate
        session = WhatIfSession.from_model(tiny_model)
        context = session.context()

        manual = session.graph.copy()
        AutomaticMixedPrecision().apply(manual, context)
        Gist().apply(manual, context)
        expected = simulate(manual).makespan_us

        piped = session.graph.copy()
        outcome = OptimizationPipeline(["amp", "gist"]).apply(piped, context)
        assert simulate(outcome.graph).makespan_us == expected


# --------------------------------------------------------------------------
# scenario serialization
# --------------------------------------------------------------------------

class TestScenarioSerialization:
    def test_json_round_trip_equality(self):
        scenario = Scenario(
            model="densenet121",
            batch_size=16,
            framework="caffe",
            precision="fp32",
            gpu={"preset": "2080ti", "compute_efficiency": 0.22},
            cluster=ClusterShape(4, 2, bandwidth_gbps=25.0),
            optimizations=["amp",
                           {"name": "gist", "params": {"lossy": True}}],
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_round_trip_every_shipped_optimization_entry(self):
        for spec in DEFAULT_REGISTRY.specs():
            entry = {"name": spec.key,
                     "params": {p.name: p.default for p in spec.params}}
            scenario = Scenario(model="resnet50", optimizations=[entry])
            restored = Scenario.from_json(scenario.to_json())
            assert restored == scenario, spec.key
            # and the restored stack still resolves through the registry
            if not spec.requires_category:
                restored.build_pipeline()

    def test_to_dict_omits_defaults(self):
        assert Scenario(model="gnmt").to_dict() == {"model": "gnmt"}

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario field"):
            Scenario.from_dict({"model": "gnmt", "turbo": True})
        with pytest.raises(ConfigError, match="unknown cluster field"):
            ClusterShape.from_dict({"machines": 2, "nics": 4})

    def test_unknown_schedule_policy(self):
        with pytest.raises(ConfigError, match="schedule policy"):
            Scenario(model="gnmt", schedule_policy="random")

    def test_builders(self):
        scenario = Scenario(
            model="resnet50", batch_size=8, framework="mxnet", gpu="p4000",
            cluster=ClusterShape(4, 1, bandwidth_gbps=5.0))
        config = scenario.build_config()
        assert config.framework == "mxnet"
        assert config.gpu.name == "Quadro-P4000"
        cluster = scenario.build_cluster()
        assert cluster.label() == "4x1"
        assert cluster.gpu.name == "Quadro-P4000"  # inherited from scenario
        assert scenario.build_model().batch_size == 8

    def test_grid_round_trip_and_expansion(self):
        grid = ScenarioGrid(
            base=Scenario(model="resnet50",
                          optimizations=["distributed_training"],
                          cluster=ClusterShape(2, 1)),
            axes={"cluster.bandwidth_gbps": [10, 20],
                  "cluster.machines": [2, 4]},
        )
        assert ScenarioGrid.from_json(grid.to_json()) == grid
        scenarios = grid.expand()
        assert len(scenarios) == len(grid) == 4
        # first axis is the outermost loop
        assert [s.cluster.bandwidth_gbps for s in scenarios] == [10, 10, 20, 20]
        assert [s.cluster.machines for s in scenarios] == [2, 4, 2, 4]

    def test_load_scenario_file(self, tmp_path):
        single = tmp_path / "one.json"
        single.write_text(Scenario(model="gnmt").to_json())
        assert isinstance(load_scenario_file(str(single)), Scenario)

        griddy = tmp_path / "grid.json"
        griddy.write_text(json.dumps(
            {"base": {"model": "gnmt"}, "axes": {"batch_size": [8, 16]}}))
        loaded = load_scenario_file(str(griddy))
        assert isinstance(loaded, ScenarioGrid)
        assert [s.batch_size for s in loaded.expand()] == [8, 16]


# --------------------------------------------------------------------------
# runner
# --------------------------------------------------------------------------

class TestScenarioRunner:
    def test_sessions_cached_per_workload(self):
        runner = ScenarioRunner()
        a = runner.session(Scenario(model="resnet50", batch_size=2))
        b = runner.session(Scenario(model="resnet50", batch_size=2,
                                    optimizations=["amp"]))
        assert a is b
        c = runner.session(Scenario(model="resnet50", batch_size=2,
                                    precision="fp16"))
        assert c is not a

    def test_baseline_only_outcome(self):
        outcome = ScenarioRunner().run(Scenario(model="resnet50",
                                                batch_size=2))
        assert outcome.prediction is None
        assert outcome.predicted_us == outcome.baseline_us
        assert outcome.improvement_percent == 0.0

    def test_missing_cluster_rejected(self):
        with pytest.raises(ConfigError, match="needs a cluster"):
            ScenarioRunner().run(Scenario(
                model="resnet50", batch_size=2,
                optimizations=["distributed_training"]))

    def test_run_grid_rejects_missing_cluster_upfront(self):
        with pytest.raises(ConfigError, match="needs a cluster"):
            ScenarioRunner().run_grid([Scenario(
                model="resnet50", batch_size=2,
                optimizations=["distributed_training"])])

    def test_grid_axis_into_missing_cluster_is_config_error(self):
        grid = ScenarioGrid(base=Scenario(model="gnmt"),
                            axes={"cluster.bandwidth_gbps": [10]})
        with pytest.raises(ConfigError, match="bad cluster declaration"):
            grid.expand()

    def test_grid_axis_through_string_declaration_rejected(self):
        grid = ScenarioGrid(base=Scenario(model="resnet50", gpu="2080ti"),
                            axes={"gpu.compute_efficiency": [0.2]})
        with pytest.raises(ConfigError, match="non-dict value"):
            grid.expand()

    def test_grid_cells_do_not_share_nested_state(self):
        base = Scenario(model="resnet50", gpu={"preset": "2080ti"})
        grid = ScenarioGrid(base=base,
                            axes={"gpu.compute_efficiency": [0.2, 0.5]})
        cells = grid.expand()
        assert [c.gpu["compute_efficiency"] for c in cells] == [0.2, 0.5]
        assert base.gpu == {"preset": "2080ti"}  # base untouched

    def test_run_matches_legacy_wiring(self):
        from repro.analysis.session import WhatIfSession
        runner = ScenarioRunner()
        outcome = runner.run(Scenario(model="resnet50", batch_size=2,
                                      optimizations=["amp"]))
        session = WhatIfSession.from_model(outcome.model,
                                           config=outcome.config)
        legacy = session.predict(AutomaticMixedPrecision())
        assert outcome.baseline_us == legacy.baseline_us
        assert outcome.predicted_us == legacy.predicted_us

    def test_run_grid_order_and_identity(self):
        runner = ScenarioRunner()
        base = Scenario(model="resnet50", batch_size=2)
        scenarios = [
            base,  # baseline-only cell rides along
            base.with_(optimizations=["amp"]),
            base.with_(optimizations=["gist"]),
        ]
        outcomes = runner.run_grid(scenarios, processes=2)
        assert [o.scenario for o in outcomes] == scenarios
        assert outcomes[0].prediction is None
        serial = [runner.run(s) for s in scenarios]
        assert [o.predicted_us for o in outcomes] == \
            [o.predicted_us for o in serial]

    def test_to_result_rows(self):
        runner = ScenarioRunner()
        outcomes = [runner.run(Scenario(model="resnet50", batch_size=2,
                                        optimizations=["amp"]))]
        result = runner.to_result(outcomes)
        assert result.headers[0] == "model"
        (row,) = result.rows
        assert row[0] == "resnet50" and row[3] == "amp"


# --------------------------------------------------------------------------
# CLI surfaces
# --------------------------------------------------------------------------

class TestScenarioCLI:
    def test_optimizations_command(self, capsys):
        assert main(["optimizations"]) == 0
        out = capsys.readouterr().out
        for key in DEFAULT_REGISTRY.keys():
            assert key in out

    def test_whatif_single_opt(self, capsys):
        assert main(["whatif", "resnet50", "--batch-size", "2",
                     "--opt", "amp"]) == 0
        assert "amp" in capsys.readouterr().out

    def test_whatif_stacked_opts_with_cluster(self, capsys):
        assert main(["whatif", "resnet50", "--batch-size", "2",
                     "--opt", "distributed_training",
                     "--opt", 'dgc={"compression_ratio": 0.05}',
                     "--cluster", "2x1", "--bandwidth", "10"]) == 0
        assert "distributed_training+dgc" in capsys.readouterr().out

    def test_whatif_default_enumerates_registry(self, capsys):
        assert main(["whatif", "resnet50", "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("amp", "vdnn", "gist", "reconstruct_batchnorm"):
            assert name in out

    def test_whatif_invalid_stack_reports_error(self, capsys):
        assert main(["whatif", "resnet50", "--batch-size", "2",
                     "--opt", "p3", "--opt", "parameter_server"]) == 2
        assert "gradient_sync" in capsys.readouterr().err

    def test_run_single_scenario_file(self, capsys, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(Scenario(model="resnet50", batch_size=2,
                                 optimizations=["amp"]).to_json())
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "amp" in out and "resnet50" in out

    def test_run_grid_file(self, capsys, tmp_path):
        path = tmp_path / "g.json"
        path.write_text(json.dumps({
            "base": {"model": "resnet50", "batch_size": 2,
                     "optimizations": ["distributed_training"],
                     "cluster": {"machines": 2, "gpus_per_machine": 1,
                                 "bandwidth_gbps": 10}},
            "axes": {"cluster.machines": [2, 4]},
        }))
        assert main(["run", str(path), "--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "2x1" in out and "4x1" in out