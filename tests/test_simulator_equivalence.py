"""Property tests: the event-driven engine matches a naive reference.

The heap engine in :mod:`repro.core.simulate` must be *behavior-identical*
to Algorithm 1's frontier-scan formulation — same ``start_us`` for every
task, same makespan — including on graphs with unordered communication
channels (where dispatch order matters) and under P3's priority policy.
The reference implementation here is written independently against the
public graph API, scanning the whole frontier every dispatch.
"""

from hypothesis import given, settings, strategies as st

from repro.core.graph import DependencyGraph
from repro.core.simulate import (
    PrioritySchedulePolicy,
    earliest_start_scheduler,
    make_priority_scheduler,
    simulate,
)
from repro.core.task import Task, TaskKind
from repro.tracing.records import comm_channel, cpu_thread, gpu_stream


def make_task(name, thread, duration, gap=0.0, kind=TaskKind.CPU, priority=0):
    return Task(name=name, kind=kind, thread=thread, duration=duration,
                gap=gap, priority=priority)


def naive_simulate(graph, key=None):
    """Frontier-scan Algorithm 1, written independently of the package.

    ``key(task)`` is the secondary sort key after feasible start (0 for
    the default schedule); ties beyond that break on the task's stable
    ordinal — its thread-major position (threads sorted, tasks in thread
    order) — matching the engines' allocation-independent tie-break.
    """
    key = key or (lambda task: 0.0)
    refs, ready, ordinal = {}, {}, {}
    for thread in graph.threads():
        tasks = graph.tasks_on(thread)
        ordered = graph.is_ordered(thread)
        for i, task in enumerate(tasks):
            ordinal[task] = len(ordinal)
            refs[task] = len(graph.predecessors(task)) + (
                1 if ordered and i > 0 else 0)
            ready[task] = 0.0
    frontier = [task for task in refs if refs[task] == 0]
    progress = {t: 0.0 for t in graph.threads()}
    start_us = {}
    while frontier:
        task = min(
            frontier,
            key=lambda t: (max(progress[t.thread], ready[t]),
                           key(t), ordinal[t]),
        )
        frontier.remove(task)
        start = max(progress[task.thread], ready[task])
        start_us[task] = start
        end = start + task.duration
        progress[task.thread] = end + task.gap
        released = list(graph.successors(task))
        if graph.is_ordered(task.thread):
            nxt = graph.thread_successor(task)
            if nxt is not None:
                released.append(nxt)
        for child in released:
            ready[child] = max(ready[child], end)
            refs[child] -= 1
            if refs[child] == 0:
                frontier.append(child)
    assert len(start_us) == len(graph), "reference deadlocked"
    makespan = max((s + t.duration for t, s in start_us.items()), default=0.0)
    return start_us, makespan


@st.composite
def random_graph(draw):
    """Random DAG: ordered CPU+GPU threads, an unordered comm channel."""
    g = DependencyGraph()
    n_cpu = draw(st.integers(min_value=1, max_value=8))
    n_gpu = draw(st.integers(min_value=0, max_value=8))
    n_comm = draw(st.integers(min_value=0, max_value=6))
    dur = st.floats(min_value=0.0, max_value=10.0)
    gap = st.floats(min_value=0.0, max_value=3.0)
    cpu = [g.append(make_task(f"c{i}", cpu_thread(0), draw(dur), draw(gap)))
           for i in range(n_cpu)]
    gpu = [g.append(make_task(f"g{i}", gpu_stream(0), draw(dur),
                              kind=TaskKind.GPU_KERNEL))
           for i in range(n_gpu)]
    # launch/sync-like cross edges, forward-only for acyclicity
    last_launch = 0
    for j in range(n_gpu):
        i = draw(st.integers(min_value=last_launch, max_value=n_cpu - 1))
        last_launch = i
        g.add_dependency(cpu[i], gpu[j])
        if draw(st.booleans()) and last_launch + 1 < n_cpu:
            k = draw(st.integers(min_value=last_launch + 1,
                                 max_value=n_cpu - 1))
            g.add_dependency(gpu[j], cpu[k])
    if n_comm:
        channel = comm_channel(0)
        g.mark_unordered(channel)
        for i in range(n_comm):
            task = g.append(make_task(
                f"m{i}", channel, draw(dur), kind=TaskKind.COMM,
                priority=draw(st.integers(min_value=0, max_value=5))))
            # gate some transfers on compute finishing (like push-after-bwd)
            if gpu and draw(st.booleans()):
                g.add_dependency(gpu[draw(st.integers(
                    min_value=0, max_value=n_gpu - 1))], task)
            elif draw(st.booleans()):
                g.add_dependency(cpu[draw(st.integers(
                    min_value=0, max_value=n_cpu - 1))], task)
    return g


@settings(max_examples=120, deadline=None)
@given(random_graph())
def test_event_driven_matches_reference_default_schedule(g):
    g.validate()
    result = simulate(g)
    ref_start, ref_makespan = naive_simulate(g)
    assert result.makespan_us == ref_makespan
    for task, start in ref_start.items():
        assert result.start_us[task] == start


@settings(max_examples=120, deadline=None)
@given(random_graph())
def test_event_driven_matches_reference_priority_schedule(g):
    def prioritized(task):
        return task.is_comm

    result = simulate(g, make_priority_scheduler(prioritized))
    ref_start, ref_makespan = naive_simulate(
        g, key=lambda t: -float(t.priority) if prioritized(t) else 0.0)
    assert result.makespan_us == ref_makespan
    for task, start in ref_start.items():
        assert result.start_us[task] == start


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_heap_engine_matches_legacy_callable_paths(g):
    """The retained legacy frontier engine agrees with the heap engine."""
    assert (simulate(g).start_us
            == simulate(g, earliest_start_scheduler).start_us)
    policy = PrioritySchedulePolicy(lambda t: t.is_comm)
    assert (simulate(g, policy).start_us
            == simulate(g, policy.__call__).start_us)


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_simulation_leaves_no_scratch_state(g):
    simulate(g)
    simulate(g, earliest_start_scheduler)
    for task in g.tasks():
        assert "_ready_us" not in task.metadata


# ---------------------------------------------------------------------------
# compiled array engine vs the object-graph engines
# ---------------------------------------------------------------------------


def _assert_same_result(compiled_result, reference_result):
    assert compiled_result.makespan_us == reference_result.makespan_us
    assert compiled_result.start_us == reference_result.start_us
    assert compiled_result.thread_busy == reference_result.thread_busy


@settings(max_examples=120, deadline=None)
@given(random_graph())
def test_array_engine_matches_reference_default_schedule(g):
    from repro.core.compiled import CompiledGraph

    result = CompiledGraph.build(g).run()
    ref_start, ref_makespan = naive_simulate(g)
    assert result.makespan_us == ref_makespan
    for task, start in ref_start.items():
        assert result.start_us[task] == start


@settings(max_examples=120, deadline=None)
@given(random_graph())
def test_array_engine_matches_reference_priority_schedule(g):
    from repro.core.compiled import CompiledGraph

    policy = make_priority_scheduler(lambda t: t.is_comm)
    result = CompiledGraph.build(g).run(policy)
    ref_start, ref_makespan = naive_simulate(
        g, key=lambda t: -float(t.priority) if t.is_comm else 0.0)
    assert result.makespan_us == ref_makespan
    for task, start in ref_start.items():
        assert result.start_us[task] == start


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_array_engine_matches_object_engine_bitwise(g):
    """Full-result identity: starts, makespan, busy intervals."""
    from repro.core.compiled import CompiledGraph

    object_result = simulate(g)
    _assert_same_result(CompiledGraph.build(g).run(), object_result)


@settings(max_examples=60, deadline=None)
@given(random_graph())
def test_array_engine_no_numpy_fallback(g):
    """The array('d')/array('q') column fallback is bit-identical."""
    import array
    import repro.core.compiled as compiled_mod

    object_result = simulate(g)
    saved_np = compiled_mod._np
    compiled_mod._np = None
    try:
        compiled = compiled_mod.CompiledGraph.build(g)
        assert isinstance(compiled.duration, array.array)
        assert isinstance(compiled.succ_indptr, array.array)
        assert isinstance(compiled.pred_indptr, array.array)
        _assert_same_result(compiled.run(), object_result)
    finally:
        compiled_mod._np = saved_np


@settings(max_examples=40, deadline=None)
@given(random_graph())
def test_simulate_auto_selects_warm_compiled_engine(g):
    """simulate() tiers up: object engine first, compiled once warm —
    with bit-identical results before and after the switch."""
    first = simulate(g)
    assert g._compiled is None  # one-shot graphs never pay the lowering
    second = simulate(g)
    assert g._compiled is not None  # second run at one generation compiles
    third = simulate(g)
    _assert_same_result(second, first)
    _assert_same_result(third, first)
