"""Tests for repro.kernels: specs, library constructors, cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.hw.device import GPU_2080TI, GPU_P4000
from repro.kernels import library as K
from repro.kernels.costmodel import KernelCostModel
from repro.kernels.kernel import KernelKind, KernelSpec


class TestKernelSpec:
    def test_arithmetic_intensity(self):
        k = KernelSpec("k", KernelKind.GEMM, flops=100, bytes=50)
        assert k.arithmetic_intensity() == 2.0

    def test_intensity_edge_cases(self):
        assert KernelSpec("k", KernelKind.MISC).arithmetic_intensity() == 0.0
        pure = KernelSpec("k", KernelKind.MISC, flops=10, bytes=0)
        assert pure.arithmetic_intensity() == float("inf")

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigError):
            KernelSpec("k", KernelKind.GEMM, flops=-1)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigError):
            KernelSpec("", KernelKind.GEMM)

    def test_with_metadata_merges(self):
        k = KernelSpec("k", KernelKind.GEMM, metadata={"a": 1})
        k2 = k.with_metadata(b=2)
        assert k2.metadata == {"a": 1, "b": 2}
        assert k.metadata == {"a": 1}

    def test_scaled(self):
        k = KernelSpec("k", KernelKind.GEMM, flops=10, bytes=20)
        k2 = k.scaled(flop_factor=2.0, byte_factor=0.5)
        assert (k2.flops, k2.bytes) == (20, 10)

    def test_kind_helpers(self):
        assert KernelKind.MEMCPY_H2D.is_memcpy
        assert not KernelKind.GEMM.is_memcpy
        assert KernelKind.CONV.is_compute_bound
        assert not KernelKind.ELEMENTWISE.is_compute_bound


class TestLibraryConstructors:
    def test_sgemm_flops(self):
        k = K.sgemm(64, 128, 256)
        assert k.flops == 2 * 64 * 128 * 256
        assert "sgemm" in k.name
        assert k.tensor_core_eligible

    def test_sgemm_batched(self):
        assert K.sgemm(8, 8, 8, batch=10).flops == 10 * 2 * 8 * 8 * 8

    def test_conv_forward_flops(self):
        # 1x1 conv, stride 1: flops = 2*N*Cout*H*W*Cin
        k = K.conv2d_forward(2, 16, 8, 8, 32, 1)
        assert k.flops == 2 * 2 * 32 * 8 * 8 * 16
        assert "scudnn" in k.name

    def test_conv_output_bytes_metadata(self):
        k = K.conv2d_forward(2, 16, 8, 8, 32, 3, 1, 1)
        assert k.metadata["output_bytes"] == 4 * 2 * 32 * 8 * 8

    def test_conv_backward_matches_forward_cost(self):
        fwd = K.conv2d_forward(2, 16, 8, 8, 32, 3, 1, 1)
        dgrad = K.conv2d_backward_data(2, 16, 8, 8, 32, 3, 1, 1)
        wgrad = K.conv2d_backward_filter(2, 16, 8, 8, 32, 3, 1, 1)
        assert dgrad.flops == fwd.flops
        assert wgrad.flops == fwd.flops

    def test_strided_conv_shrinks_output(self):
        s1 = K.conv2d_forward(1, 8, 16, 16, 8, 3, 1, 1)
        s2 = K.conv2d_forward(1, 8, 16, 16, 8, 3, 2, 1)
        assert s2.flops < s1.flops

    def test_adam_step_kernel_count(self):
        kernels = list(K.adam_step_kernels(1000))
        assert len(kernels) == 13  # reproduces the paper's 2633/5164 counts
        assert all(k.kind is KernelKind.OPTIMIZER for k in kernels)

    def test_sgd_step_kernel_count(self):
        assert len(list(K.sgd_step_kernels(1000))) == 2

    def test_adam_core_kernels_are_selectable(self):
        names = [k.name for k in K.adam_step_kernels(10)]
        assert any("addcmul" in n for n in names)
        assert any("addcdiv" in n for n in names)

    def test_fused_adam_kernel(self):
        k = K.fused_adam_kernel(1e6)
        assert k.kind is KernelKind.OPTIMIZER
        assert "fused_adam" in k.name

    def test_memcpy_kinds(self):
        assert K.memcpy_h2d(100).kind is KernelKind.MEMCPY_H2D
        assert K.memcpy_d2h(100).kind is KernelKind.MEMCPY_D2H

    def test_nccl_names_match_selection_patterns(self):
        assert "AllReduce" in K.nccl_allreduce(100).name
        assert "ReduceScatter" in K.nccl_reduce_scatter(100).name
        assert "AllGather" in K.nccl_allgather(100).name

    def test_elementwise_traffic(self):
        k = K.elementwise(1000, reads=2, writes=1)
        assert k.bytes == 4 * 1000 * 3


class TestCostModel:
    model = KernelCostModel(GPU_2080TI)

    def test_deterministic(self):
        k = K.sgemm(512, 512, 512)
        assert self.model.duration_us(k) == self.model.duration_us(k)

    def test_salt_changes_duration_slightly(self):
        k = K.sgemm(512, 512, 512)
        d0 = self.model.duration_us(k, key_salt="0")
        d1 = self.model.duration_us(k, key_salt="1")
        assert d0 != d1
        assert abs(d0 - d1) / d0 < 0.1

    def test_compute_bound_scales_with_flops(self):
        small = self.model.duration_us(K.sgemm(256, 256, 256))
        large = self.model.duration_us(K.sgemm(1024, 1024, 1024))
        assert large > small * 10

    def test_memory_bound_scales_with_bytes(self):
        small = self.model.duration_us(K.elementwise(1e5))
        large = self.model.duration_us(K.elementwise(1e8))
        assert large > small * 100

    def test_fixed_overhead_floors_tiny_kernels(self):
        tiny = self.model.duration_us(K.elementwise(1))
        assert tiny >= GPU_2080TI.kernel_overhead_us * 0.9

    def test_fp16_speedup_band_tensor_cores(self):
        k = K.sgemm(2048, 2048, 2048)
        speedup = self.model.duration_us(k) / self.model.duration_us(k, "fp16")
        assert 2.0 < speedup < 3.2

    def test_fp16_speedup_band_memory_bound(self):
        k = K.elementwise(1e8)
        speedup = self.model.duration_us(k) / self.model.duration_us(k, "fp16")
        assert 1.5 < speedup < 2.2

    def test_fp16_without_tensor_cores_is_modest(self):
        p4000 = KernelCostModel(GPU_P4000)
        k = K.sgemm(2048, 2048, 2048)
        speedup = p4000.duration_us(k) / p4000.duration_us(k, "fp16")
        assert speedup < 1.5

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigError):
            self.model.duration_us(K.sgemm(8, 8, 8), precision="bf16")

    def test_memcpy_uses_pcie(self):
        k = K.memcpy_h2d(1e7)
        expected = 1e7 / GPU_2080TI.pcie_bytes_per_us()
        assert self.model.duration_us(k) == pytest.approx(expected, rel=0.1)

    def test_fused_cheaper_than_sum(self):
        kernels = [K.elementwise(1e6) for _ in range(10)]
        unfused = sum(self.model.duration_us(k, key_salt=str(i))
                      for i, k in enumerate(kernels))
        fused = self.model.fused_duration_us(kernels)
        assert fused < unfused

    def test_fused_rejects_empty(self):
        with pytest.raises(ConfigError):
            self.model.fused_duration_us([])

    @given(st.floats(min_value=1, max_value=1e10))
    def test_duration_positive(self, numel):
        assert self.model.duration_us(K.elementwise(numel)) > 0
