"""Unit tests for the linked-list graph representation and its invariants.

The thread order moved from Python list splices to an intrusive doubly
linked list (O(1) insert/remove/neighbor queries); these tests model the
order with plain lists and check the graph agrees after heavy random churn,
with ``validate()`` auditing link symmetry, counts, and acyclicity.
"""

import pytest

from repro.common.errors import GraphConsistencyError
from repro.common.prng import stable_hash
from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.tracing.records import cpu_thread, gpu_stream


def make_task(name, thread=None, duration=1.0):
    return Task(name=name, kind=TaskKind.CPU, thread=thread or cpu_thread(0),
                duration=duration)


class TestLinkedOrder:
    def test_append_insert_remove_order(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        c = g.append(make_task("c"))
        b = g.insert_after(a, make_task("b"))
        z = g.insert_before(a, make_task("z"))
        assert [t.name for t in g.tasks_on(cpu_thread(0))] == \
            ["z", "a", "b", "c"]
        assert g.thread_predecessor(a) is z
        assert g.thread_successor(a) is b
        assert g.thread_predecessor(z) is None
        assert g.thread_successor(c) is None
        g.remove(a)
        assert [t.name for t in g.tasks_on(cpu_thread(0))] == ["z", "b", "c"]
        assert g.thread_successor(z) is b
        assert g.thread_predecessor(b) is z
        g.validate()

    def test_remove_last_task_drops_thread(self):
        g = DependencyGraph()
        t = g.append(make_task("only"))
        g.remove(t)
        assert len(g) == 0
        assert g.threads() == []
        g.validate()

    def test_insert_forces_anchor_thread(self):
        g = DependencyGraph()
        a = g.append(make_task("a", thread=gpu_stream(3)))
        b = g.insert_after(a, make_task("b", thread=cpu_thread(0)))
        assert b.thread == gpu_stream(3)
        assert g.tasks_on(gpu_stream(3)) == [a, b]

    def test_double_insert_rejected(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        with pytest.raises(GraphConsistencyError):
            g.append(a)
        with pytest.raises(GraphConsistencyError):
            g.insert_after(a, a)

    def test_remove_rewires_transitive_edges(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0)))
        c = g.append(make_task("c", thread=gpu_stream(1)))
        g.add_dependency(a, b)
        g.add_dependency(b, c)
        g.remove(b)
        assert c in g.successors(a)
        assert a in g.predecessors(c)
        g.remove(a)
        assert g.predecessors(c) == set()

    def test_remove_without_rewire(self):
        g = DependencyGraph()
        a = g.append(make_task("a"))
        b = g.append(make_task("b", thread=gpu_stream(0)))
        c = g.append(make_task("c", thread=gpu_stream(1)))
        g.add_dependency(a, b)
        g.add_dependency(b, c)
        g.remove(b, rewire=False)
        assert g.successors(a) == set()
        assert g.predecessors(c) == set()


class TestChurnInvariants:
    """Randomized splice churn checked against a plain-list model."""

    def test_heavy_churn_matches_list_model(self):
        g = DependencyGraph()
        thread = cpu_thread(0)
        model = []
        counter = 0

        def fresh():
            nonlocal counter
            counter += 1
            return make_task(f"t{counter}")

        for step in range(2000):
            r = stable_hash(f"churn/{step}") % 100
            if not model or r < 30:
                task = fresh()
                g.append(task)
                model.append(task)
            elif r < 55:
                anchor_i = stable_hash(f"anchor/{step}") % len(model)
                task = fresh()
                g.insert_after(model[anchor_i], task)
                model.insert(anchor_i + 1, task)
            elif r < 75:
                anchor_i = stable_hash(f"anchor/{step}") % len(model)
                task = fresh()
                g.insert_before(model[anchor_i], task)
                model.insert(anchor_i, task)
            else:
                victim_i = stable_hash(f"victim/{step}") % len(model)
                g.remove(model.pop(victim_i))
            if step % 250 == 0:
                g.validate()
                assert g.tasks_on(thread) == model
        g.validate()
        assert g.tasks_on(thread) == model
        assert len(g) == len(model)
        # neighbor queries agree with the model everywhere
        for i, task in enumerate(model):
            prev = model[i - 1] if i > 0 else None
            nxt = model[i + 1] if i + 1 < len(model) else None
            assert g.thread_predecessor(task) is prev
            assert g.thread_successor(task) is nxt

    def test_churn_with_edges_stays_valid(self):
        g = DependencyGraph()
        cpu = [g.append(make_task(f"c{i}")) for i in range(50)]
        gpu = [g.append(make_task(f"g{i}", thread=gpu_stream(0)))
               for i in range(50)]
        for i in range(50):
            g.add_dependency(cpu[i], gpu[i])
        g.validate()
        # remove every other GPU task (rewired), then their launches
        for i in range(0, 50, 2):
            g.remove(gpu[i])
        for i in range(0, 50, 2):
            g.remove(cpu[i])
        g.validate()
        assert len(g) == 50

    def test_copy_preserves_structure_after_churn(self):
        g = DependencyGraph()
        tasks = [g.append(make_task(f"t{i}")) for i in range(100)]
        for i in range(0, 98, 3):
            g.add_dependency(tasks[i], tasks[i + 2])
        for i in range(0, 100, 7):
            g.remove(tasks[i])
        g.validate()
        clone = g.copy()
        clone.validate()
        assert len(clone) == len(g)
        originals = g.tasks_on(cpu_thread(0))
        clones = clone.tasks_on(cpu_thread(0))
        assert [t.name for t in clones] == [t.name for t in originals]
        assert all(c is not o for c, o in zip(clones, originals))
        for o, c in zip(originals, clones):
            assert ({s.name for s in g.successors(o)}
                    == {s.name for s in clone.successors(c)})
