"""Tests for repro.common.prng (deterministic jitter)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.prng import biased_factor, jitter_factor, stable_hash, stable_uniform


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinct_keys_differ(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_known_width(self):
        assert 0 <= stable_hash("anything") < 2**64

    def test_empty_key(self):
        assert isinstance(stable_hash(""), int)


class TestStableUniform:
    @given(st.text(max_size=50))
    def test_in_unit_interval(self, key):
        assert 0.0 <= stable_uniform(key) < 1.0

    def test_deterministic(self):
        assert stable_uniform("kernel/sgemm/0") == stable_uniform("kernel/sgemm/0")


class TestJitterFactor:
    @given(st.text(max_size=50), st.floats(min_value=0.0, max_value=0.5))
    def test_within_spread(self, key, spread):
        factor = jitter_factor(key, spread)
        assert 1.0 - spread <= factor <= 1.0 + spread

    def test_zero_spread_is_identity(self):
        assert jitter_factor("x", 0.0) == 1.0

    def test_invalid_spread_rejected(self):
        with pytest.raises(ValueError):
            jitter_factor("x", 1.0)
        with pytest.raises(ValueError):
            jitter_factor("x", -0.1)

    def test_factor_positive(self):
        assert jitter_factor("y", 0.99) > 0.0


class TestBiasedFactor:
    @given(st.text(max_size=50))
    def test_within_band(self, key):
        factor = biased_factor(key, 2.0, 3.0)
        assert 2.0 <= factor <= 3.0

    def test_degenerate_band(self):
        assert biased_factor("k", 1.5, 1.5) == 1.5

    def test_inverted_band_rejected(self):
        with pytest.raises(ValueError):
            biased_factor("k", 3.0, 2.0)

    def test_deterministic(self):
        assert biased_factor("a", 1.0, 2.0) == biased_factor("a", 1.0, 2.0)

    def test_spread_across_keys(self):
        # many keys should not all collapse to one value
        values = {round(biased_factor(f"key{i}", 0.0, 1.0), 3) for i in range(50)}
        assert len(values) > 25
