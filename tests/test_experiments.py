"""Tests for the experiment runners (reduced configurations for speed)."""

import pytest

from repro.scenarios import SweepStore
from repro.experiments import (
    fig1_timeline,
    fig5_amp,
    fig6_breakdown,
    fig7_fusedadam,
    fig8_distributed,
    fig9_nccl,
    fig10_p3,
    sec52_modeling,
    sec64_batchnorm,
    table1_catalog,
)
from repro.experiments.common import ExperimentResult


class TestExperimentResult:
    def test_add_row_checks_width(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1)

    def test_render_contains_title_and_cells(self):
        r = ExperimentResult("x", "My Title", ["a"], notes="note here")
        r.add_row(3.14159)
        out = r.render()
        assert "My Title" in out and "3.14" in out and "note here" in out

    def test_column(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add_row(1, 2)
        r.add_row(3, 4)
        assert r.column("b") == [2, 4]


class TestFig1:
    def test_runs(self):
        r = fig1_timeline.run("resnet50")
        assert dict(zip(r.column("quantity"), r.column("value")))["threads"] == 3
        assert "gpu_stream" in r.notes


class TestTable1:
    def test_all_ten_optimizations_covered(self):
        r = table1_catalog.run()
        assert len(r.rows) == 10
        evaluated = [row for row in r.rows if row[3] == "yes"]
        assert len(evaluated) == 5


class TestFig5:
    def test_single_model(self):
        r = fig5_amp.run(models=["resnet50"])
        (row,) = r.rows
        assert row[0] == "resnet50"
        baseline, truth, pred = row[1], row[2], row[3]
        assert truth < baseline          # AMP helps
        assert row[5] < 15.0             # prediction error within paper band


class TestFig6:
    def test_breakdown_rows(self):
        r = fig6_breakdown.run(models=["resnet50"])
        assert len(r.rows) == 2  # fp32 + fp16
        fp32, fp16 = r.rows
        assert fp16[4] < fp32[4]        # gpu_only shrinks under AMP
        assert fp16[3] == pytest.approx(fp32[3], rel=0.25)  # cpu_only stays


class TestFig7:
    def test_single_model(self):
        r = fig7_fusedadam.run(models=["bert_base"])
        (row,) = r.rows
        assert row[2] < row[1]   # ground truth faster than baseline
        assert row[5] < 10.0     # error
        assert row[6] == pytest.approx(2633, rel=0.05)  # wu kernel count


class TestFig8:
    def test_reduced_grid(self):
        r = fig8_distributed.run(models=["resnet50"], bandwidths=[10],
                                 configs=[(1, 1), (2, 1)])
        assert len(r.rows) == 2
        one, two = r.rows
        assert two[3] > one[3]   # 2 workers slower per-iteration
        assert two[5] < 10.0     # error within paper band


class TestFig9:
    def test_contention_above_theoretical(self):
        r = fig9_nccl.run(cluster_shape=(2, 1))
        ratios = r.column("baseline_over_theoretical")
        assert all(x > 1.0 for x in ratios)
        assert 1.1 < sum(ratios) / len(ratios) < 1.6

    def test_sync_impact_never_degrades(self):
        r = fig9_nccl.run_sync_impact(bandwidths=[10.0],
                                      configs=[(2, 1), (4, 1)])
        assert all(imp > -1.0 for imp in r.column("improvement_%"))


class TestFig10:
    def test_reduced_sweep(self):
        r = fig10_p3.run("resnet50", bandwidths=[2.0, 6.0], batch_size=32)
        low, high = r.rows
        assert low[1] > high[1]          # higher bandwidth -> faster baseline
        for row in r.rows:
            assert row[2] <= row[1] * 1.01   # P3 never slower than baseline
            assert row[4] < 25.0             # prediction error sane


class TestSec52:
    def test_all_five_modeled(self):
        r = sec52_modeling.run()
        assert {row[0] for row in r.rows} == {
            "blueconnect", "dgc", "metaflow", "vdnn", "gist"}


class TestSec64:
    def test_prediction_overestimates_ground_truth(self):
        r = sec64_batchnorm.run()
        values = dict(zip(r.column("quantity"), r.column("value")))
        assert values["predicted_improvement_%"] > \
            values["ground_truth_improvement_%"] > 0
        # the paper's qualitative conclusion: less promising than the
        # 17.5% the optimization's own paper claims
        assert values["predicted_improvement_%"] < 17.5


class TestExperimentsOnTheStore:
    """Every remaining experiment's engine measurements ride the store.

    First run computes and persists (namespaced ``groundtruth:*`` kinds);
    second run serves from the store — and the rows are bit-identical,
    which is what makes the caching invisible to the figures.
    """

    def test_fig5_second_run_is_served_from_the_store(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        first = fig5_amp.run(models=["resnet50"], store=store)
        writes = store.stats.writes
        assert writes >= 2  # the predict cell and the AMP measurement
        second = fig5_amp.run(models=["resnet50"], store=store)
        assert second.rows == first.rows
        assert store.stats.writes == writes  # nothing recomputed
        assert store.stats.hits >= 2

    def test_fig7_store_and_jobs_hit_the_cache_on_second_run(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        first = fig7_fusedadam.run(models=["bert_base"], jobs=2, store=store)
        assert any(k for k in store.keys())
        second = fig7_fusedadam.run(models=["bert_base"], jobs=2, store=store)
        assert second.rows == first.rows
        assert store.stats.hits >= 1  # the ground truth came from the store

    def test_fig10_caches_both_measured_series(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        first = fig10_p3.run("resnet50", bandwidths=[2.0], batch_size=32,
                             store=store)
        assert len(store) == 2  # ps-baseline + ps-p3 for the one cell
        second = fig10_p3.run("resnet50", bandwidths=[2.0], batch_size=32,
                              store=store)
        (f,), (s,) = first.rows, second.rows
        # every column is *bit*-stable, including the locally re-simulated
        # PS prediction: simulate breaks ties on stable task ordinals, so
        # the historical fig10 allocation-order last-ulp wobble is gone
        assert s == f
        assert store.stats.hits >= 2

    def test_sec52_predictions_ride_the_batch_substrate(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        first = sec52_modeling.run(store=store)
        assert len(store) == 6  # one predict entry per cell
        second = sec52_modeling.run(store=store)
        assert second.rows == first.rows
        assert store.stats.hits >= 6

    def test_sec64_caches_the_engine_measurement(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        first = sec64_batchnorm.run(store=store)
        assert len(store) == 1
        second = sec64_batchnorm.run(store=store)
        assert second.rows == first.rows
        assert store.stats.hits == 1

    def test_store_accepts_a_directory_path(self, tmp_path):
        root = str(tmp_path / "store")
        first = sec64_batchnorm.run(store=root)
        second = sec64_batchnorm.run(store=root)
        assert second.rows == first.rows
        assert len(SweepStore(root)) == 1

    def test_force_recomputes_but_keeps_rows(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        first = fig5_amp.run(models=["resnet50"], store=store)
        forced = fig5_amp.run(models=["resnet50"], store=store, force=True)
        assert forced.rows == first.rows

    def test_fig8_and_fig9b_share_the_ddp_sync_entries(self, tmp_path):
        """One deployment, one entry: fig9b's sync cells reuse fig8's."""
        store = SweepStore(str(tmp_path / "store"))
        fig8_distributed.run(models=["gnmt"], bandwidths=[10.0],
                             configs=[(2, 1)], store=store)
        hits_before = store.stats.hits
        fig9_nccl.run_sync_impact(bandwidths=[10.0], configs=[(2, 1)],
                                  store=store)
        assert store.stats.hits > hits_before  # the sync cell was shared
