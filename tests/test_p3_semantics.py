"""Behavioral tests of the parameter-server/P3 scheduling semantics."""

import pytest

from repro.analysis.session import WhatIfSession
from repro.framework.config import TrainingConfig
from repro.framework.paramserver import run_ps_baseline, run_ps_p3
from repro.hw.device import GPU_P4000
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.optimizations import PriorityParameterPropagation
from repro.optimizations.p3 import (
    RECEIVE_CHANNEL,
    ParameterServerTransfer,
    ServerCostModel,
)

from helpers import make_tiny_model


def make_cluster(bw=2.0):
    return ClusterSpec(4, 1, GPU_P4000, NetworkSpec(bandwidth_gbps=bw))


@pytest.fixture
def session():
    config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
    return WhatIfSession.from_model(make_tiny_model(), config=config)


class TestPullOrdering:
    def _pull_order(self, session, prioritize):
        opt = ParameterServerTransfer(slice_bytes=1 << 30,
                                      prioritize=prioritize)
        graph, result = session.predict_simulation(opt,
                                                   cluster=make_cluster())
        pulls = [t for t in graph.tasks_on(RECEIVE_CHANNEL)]
        pulls.sort(key=lambda t: result.start_us[t])
        return [t.layer for t in pulls]

    def test_p3_pulls_front_layers_first(self, session):
        order = self._pull_order(session, prioritize=True)
        layer_index = {name: i for i, name in
                       enumerate(session.trace.metadata["layer_order"])}
        indices = [layer_index[l] for l in order]
        assert indices == sorted(indices)

    def test_baseline_pulls_back_layers_first(self, session):
        order = self._pull_order(session, prioritize=False)
        layer_index = {name: i for i, name in
                       enumerate(session.trace.metadata["layer_order"])}
        indices = [layer_index[l] for l in order]
        assert indices == sorted(indices, reverse=True)

    def test_p3_overlaps_better(self, session):
        """Front-first pulls let the forward pass start sooner."""
        cl = make_cluster(bw=1.0)
        p3 = session.predict(PriorityParameterPropagation(), cluster=cl)
        baseline = session.predict(
            ParameterServerTransfer(slice_bytes=None, prioritize=False),
            cluster=cl)
        assert p3.predicted_us < baseline.predicted_us


class TestPushSemantics:
    def test_push_waits_for_backward(self, session):
        graph, result = session.predict_simulation(
            PriorityParameterPropagation(), cluster=make_cluster())
        for push in (t for t in graph.tasks()
                     if t.name.startswith("push")):
            for pred in graph.predecessors(push):
                assert result.start_us[push] >= result.end_us(pred) - 1e-6

    def test_slice_sizes_sum_to_gradients(self, session):
        graph, _ = session.predict_simulation(
            PriorityParameterPropagation(slice_bytes=128 * 1024),
            cluster=make_cluster())
        pushed = sum(t.size_bytes for t in graph.tasks()
                     if t.name.startswith("push"))
        expected = sum(session.trace.metadata["layer_grad_bytes"].values())
        assert pushed == pytest.approx(expected)


class TestGroundTruthVsPrediction:
    def test_prediction_is_optimistic(self):
        """The idealized prediction (no server cost) lower-bounds the
        ground truth at every bandwidth — the Section 6.6 over-estimation."""
        model = make_tiny_model()
        config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
        session = WhatIfSession.from_model(model, config=config)
        for bw in (1.0, 4.0, 16.0):
            cl = make_cluster(bw)
            truth = run_ps_p3(model, cl, config, trace=session.trace)
            pred = session.predict(PriorityParameterPropagation(), cluster=cl)
            assert pred.predicted_us <= truth.iteration_us + 1e-6

    def test_p3_gt_never_worse_than_baseline_gt(self):
        model = make_tiny_model()
        config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
        session = WhatIfSession.from_model(model, config=config)
        for bw in (1.0, 8.0):
            cl = make_cluster(bw)
            base = run_ps_baseline(model, cl, config, trace=session.trace)
            p3 = run_ps_p3(model, cl, config, trace=session.trace)
            assert p3.iteration_us <= base.iteration_us * 1.02

    def test_custom_server_model(self):
        model = make_tiny_model()
        config = TrainingConfig(framework="mxnet", gpu=GPU_P4000)
        slow_server = ServerCostModel(bytes_per_us=100.0, per_op_us=500.0)
        fast = run_ps_baseline(model, make_cluster(), config)
        slow = run_ps_baseline(model, make_cluster(), config,
                               server=slow_server)
        assert slow.iteration_us > fast.iteration_us
