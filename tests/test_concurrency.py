"""Tests for the Section-7.5 concurrent-kernel mode."""

import pytest

from repro.experiments import sec75_concurrency
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine, SECOND_STREAM
from repro.models.registry import build_model
from repro.tracing.records import gpu_stream


@pytest.fixture(scope="module")
def gnmt_traces():
    model = build_model("gnmt")
    config = TrainingConfig()
    serialized = Engine(model=model, config=config).run_iteration()
    concurrent = Engine(model=model, config=config,
                        concurrent_streams=True).run_iteration()
    return serialized, concurrent


class TestConcurrentStreams:
    def test_second_stream_used(self, gnmt_traces):
        _, concurrent = gnmt_traces
        second = concurrent.by_thread(gpu_stream(SECOND_STREAM))
        assert second
        assert all("lstm_gates" in e.name for e in second)

    def test_serialized_mode_uses_one_stream(self, gnmt_traces):
        serialized, _ = gnmt_traces
        gpu_threads = [t for t in serialized.threads() if t.is_gpu]
        assert len(gpu_threads) == 1

    def test_concurrency_speeds_up_ground_truth(self, gnmt_traces):
        serialized, concurrent = gnmt_traces
        assert concurrent.duration_us < serialized.duration_us

    def test_concurrent_trace_validates(self, gnmt_traces):
        _, concurrent = gnmt_traces
        concurrent.validate()

    def test_kernel_population_identical(self, gnmt_traces):
        serialized, concurrent = gnmt_traces
        assert len(serialized.kernels()) == len(concurrent.kernels())


class TestSec75Experiment:
    def test_conservative_but_accurate(self):
        result = sec75_concurrency.run("gnmt")
        values = dict(zip(result.column("quantity"), result.column("value")))
        # conservative: the serialized-profile prediction is slower...
        assert values["conservatism_%"] > 0
        # ...but accurate, because GNMT's dominant GEMMs are serial anyway
        assert values["prediction_error_%"] < 10.0
        assert values["gpu_streams_in_concurrent_trace"] == 2
