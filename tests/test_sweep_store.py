"""Cache correctness of the persistent sweep store.

The store is only worth having if every hit is trustworthy:

* any *semantic* change to a scenario must miss (different content);
* any *cosmetic* change — key order, JSON formatting, int-vs-float
  spelling, explicitly spelled defaults — must hit (same content);
* a truncated or tampered entry must be detected and treated as a miss,
  so the cell is re-simulated rather than trusted;
* a different registry (different fingerprint) or result kind must miss.
"""

import json
import os

import pytest

from helpers import make_tiny_model
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import (
    OptimizationRegistry,
    OptimizationSpec,
    Scenario,
    ScenarioRunner,
    SweepStore,
    scenario_key,
)

MODEL = "tinystore"


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    def build(batch_size=None):
        return make_tiny_model(batch=batch_size or 4)
    try:
        register_model(MODEL, build)
    except ConfigError:
        pass


@pytest.fixture
def store(tmp_path):
    return SweepStore(str(tmp_path / "store"))


BASE = Scenario(model="resnet50", batch_size=32,
                optimizations=["amp"])
VALUES = {"baseline_us": 123.5, "predicted_us": 100.25}


# ------------------------------------------------------------ basic plumbing

def test_put_get_round_trip(store):
    key = store.put(BASE, VALUES)
    assert store.get(BASE) == VALUES
    assert key == scenario_key(BASE)
    assert BASE in store
    assert list(store.keys()) == [key]
    assert len(store) == 1
    assert store.stats.hits == 1 and store.stats.writes == 1


def test_get_on_empty_store_is_a_miss(store):
    assert store.get(BASE) is None
    assert store.stats.misses == 1 and store.stats.rejected == 0


# ------------------------------------------------------- semantic sensitivity

@pytest.mark.parametrize("change", [
    lambda s: s.with_(batch_size=33),
    lambda s: s.with_(model="vgg19"),
    lambda s: s.with_(precision="fp16"),
    lambda s: s.with_(optimizations=["fused_adam"]),
    lambda s: s.with_(optimizations=[
        {"name": "amp", "params": {"compute_shrink": 0.9}}]),
    lambda s: s.with_cluster(2, 1, bandwidth_gbps=10.0),
    lambda s: s.with_(gpu="p4000"),
])
def test_semantic_change_misses(store, change):
    store.put(BASE, VALUES)
    changed = change(BASE)
    assert scenario_key(changed) != scenario_key(BASE)
    assert store.get(changed) is None
    assert store.get(BASE) == VALUES  # the original entry is untouched


def test_cluster_bandwidth_change_misses(store):
    a = BASE.with_cluster(2, 1, bandwidth_gbps=10.0)
    b = BASE.with_cluster(2, 1, bandwidth_gbps=20.0)
    store.put(a, VALUES)
    assert store.get(b) is None
    assert store.get(a) == VALUES


# ------------------------------------------------------- cosmetic invariance

def test_key_order_and_formatting_hit(store):
    store.put(BASE, VALUES)
    data = BASE.to_dict()
    shuffled = {k: data[k] for k in reversed(list(data))}
    assert store.get(Scenario.from_json(json.dumps(shuffled, indent=7))) \
        == VALUES


def test_numeric_spelling_and_explicit_defaults_hit(store):
    a = BASE.with_cluster(2, 1, bandwidth_gbps=10)
    store.put(a, VALUES)
    b = Scenario.from_dict({
        "model": "resnet50", "batch_size": 32,
        "framework": "pytorch",      # explicit default
        "precision": "fp32",         # explicit default
        "optimizations": ["amp"],
        "cluster": {"machines": 2, "gpus_per_machine": 1,
                    "bandwidth_gbps": 10.0},
    })
    assert store.get(b) == VALUES


# --------------------------------------------------------- corruption safety

def _entry_path(store, scenario):
    return store.path_for(store.key(scenario))


def test_truncated_entry_is_rejected_and_deleted(store):
    store.put(BASE, VALUES)
    path = _entry_path(store, BASE)
    raw = open(path, "rb").read()
    with open(path, "wb") as f:
        f.write(raw[:len(raw) // 2])
    # membership is validated existence, and it never skews the counters
    # (nor deletes anything: contains() is a pure probe)
    assert BASE not in store
    assert store.stats.rejected == 0
    assert os.path.exists(path)
    assert store.get(BASE) is None
    assert store.stats.rejected == 1
    # the failed read removed the dead bytes on the spot
    assert not os.path.exists(path)
    # a fresh put writes a clean entry
    store.put(BASE, VALUES)
    assert store.get(BASE) == VALUES


def test_tampered_values_fail_the_checksum_and_are_deleted(store):
    store.put(BASE, VALUES)
    path = _entry_path(store, BASE)
    with open(path) as f:
        payload = json.load(f)
    payload["values"]["predicted_us"] = 1.0  # parses fine, lies loudly
    with open(path, "w") as f:
        json.dump(payload, f)
    assert store.get(BASE) is None
    assert store.stats.rejected == 1
    assert not os.path.exists(path)


def test_empty_and_garbage_files_are_rejected(store):
    store.put(BASE, VALUES)
    path = _entry_path(store, BASE)
    for garbage in (b"", b"\x00\xff\x00garbage", b"[1, 2, 3]"):
        with open(path, "wb") as f:
            f.write(garbage)
        assert store.get(BASE) is None
        assert not os.path.exists(path)  # each bad file is deleted
    assert store.stats.rejected == 3


def test_wrong_kind_misses(store):
    store.put(BASE, {"iteration_us": 5.0}, kind="groundtruth:ddp-sync")
    assert store.get(BASE) is None  # kind "predict"
    assert BASE not in store        # membership is per-kind too
    assert store.contains(BASE, kind="groundtruth:ddp-sync")
    assert store.get(BASE, kind="groundtruth:ddp-sync") \
        == {"iteration_us": 5.0}


def test_registry_fingerprint_salts_the_key(store, tmp_path):
    store.put(BASE, VALUES)
    other = OptimizationRegistry()
    other.register(OptimizationSpec(key="amp",
                                    factory=AutomaticMixedPrecision,
                                    summary="same key, different schema"))
    rebased = SweepStore(store.root, registry=other)
    assert rebased.get(BASE) is None
    assert scenario_key(BASE, other) != scenario_key(BASE)


# ----------------------------------------------------- end-to-end with runner

def test_corrupted_cell_is_resimulated_not_trusted(tmp_path):
    scenarios = [
        Scenario(model=MODEL,
                 optimizations=["distributed_training"]).with_cluster(
                     2, 1, bandwidth_gbps=bw)
        for bw in (10.0, 25.0)
    ]
    store = SweepStore(str(tmp_path / "store"))
    first = ScenarioRunner().run_grid(scenarios, parallel=1, store=store)

    # corrupt exactly one of the two entries
    victim = store.path_for(store.key(scenarios[0]))
    with open(victim, "w") as f:
        f.write('{"format": 1, "values": {"baseline_us": 1.0, '
                '"predicted_us": 1.0}')  # truncated: no closing brace

    second = ScenarioRunner().run_grid(scenarios, parallel=1, store=store)
    assert [o.cached for o in second] == [False, True]
    assert [o.as_row() for o in second] == [o.as_row() for o in first]
    # the re-simulated entry is rewritten and trustworthy again
    third = ScenarioRunner().run_grid(scenarios, store=store)
    assert all(o.cached for o in third)
    assert [o.as_row() for o in third] == [o.as_row() for o in first]


def test_missing_values_keys_are_not_trusted(store):
    # a "predict" entry must carry both timings; a hand-written entry
    # with the wrong shape is recomputed, not served
    store.put(BASE, {"baseline_us": 10.0})  # predicted_us missing
    from repro.scenarios.batch import _values_ok
    assert _values_ok(store.get(BASE)) is False
