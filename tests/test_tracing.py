"""Tests for repro.tracing: records, Trace container, serialization."""

import pytest

from repro.common.errors import TraceError
from repro.tracing.records import (
    EventCategory,
    ExecutionThread,
    TraceEvent,
    comm_channel,
    cpu_thread,
    gpu_stream,
)
from repro.tracing.trace import Trace, render_timeline


def make_event(name="k", start=0.0, dur=1.0, thread=None, category=None,
               corr=None):
    return TraceEvent(
        category=category or EventCategory.KERNEL,
        name=name, start_us=start, duration_us=dur,
        thread=thread or gpu_stream(7), correlation_id=corr,
    )


class TestExecutionThread:
    def test_kind_helpers(self):
        assert cpu_thread(0).is_cpu
        assert gpu_stream(7).is_gpu
        assert comm_channel(1).is_comm

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ExecutionThread("tpu", 0)

    def test_hashable_and_ordered(self):
        threads = {cpu_thread(0), cpu_thread(0), gpu_stream(1)}
        assert len(threads) == 2
        assert sorted([gpu_stream(1), cpu_thread(0)])[0] == cpu_thread(0)

    def test_str(self):
        assert str(gpu_stream(7)) == "gpu_stream:7"


class TestTraceEvent:
    def test_end_us(self):
        assert make_event(start=5.0, dur=2.5).end_us == 7.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_event(dur=-1.0)

    def test_gpu_side_classification(self):
        assert make_event(category=EventCategory.KERNEL).is_gpu_side
        assert make_event(category=EventCategory.MEMCPY).is_gpu_side
        assert not make_event(category=EventCategory.RUNTIME,
                              thread=cpu_thread(0)).is_gpu_side

    def test_dict_roundtrip(self):
        event = TraceEvent(
            category=EventCategory.COMM, name="allreduce", start_us=1.0,
            duration_us=2.0, thread=comm_channel(0), correlation_id=None,
            layer="fc", phase="backward", size_bytes=1024.0,
            metadata={"bucket": 3},
        )
        again = TraceEvent.from_dict(event.to_dict())
        assert again.name == event.name
        assert again.thread == event.thread
        assert again.metadata == {"bucket": 3}
        assert again.phase == "backward"


class TestTrace:
    def test_events_sorted_on_construction(self):
        t = Trace(events=[make_event(start=5.0), make_event(start=1.0)])
        starts = [e.start_us for e in t]
        assert starts == sorted(starts)

    def test_duration(self):
        t = Trace(events=[make_event(start=1.0, dur=2.0),
                          make_event(start=5.0, dur=3.0)])
        assert t.duration_us == 7.0

    def test_empty_trace_has_no_span(self):
        with pytest.raises(TraceError):
            _ = Trace().duration_us

    def test_filters(self):
        events = [
            make_event(category=EventCategory.KERNEL),
            make_event(category=EventCategory.RUNTIME, thread=cpu_thread(0),
                       start=2.0),
        ]
        t = Trace(events=events)
        assert len(t.by_category(EventCategory.KERNEL)) == 1
        assert len(t.by_thread(cpu_thread(0))) == 1
        assert len(t.kernels()) == 1
        assert len(t.threads()) == 2

    def test_find_by_substring(self):
        t = Trace(events=[make_event(name="volta_sgemm_x"),
                          make_event(name="relu", start=2.0)])
        assert len(t.find("sgemm")) == 1

    def test_validate_rejects_overlap_on_thread(self):
        t = Trace(events=[make_event(start=0.0, dur=5.0),
                          make_event(start=2.0, dur=1.0)])
        with pytest.raises(TraceError):
            t.validate()

    def test_validate_allows_overlap_across_threads(self):
        t = Trace(events=[
            make_event(start=0.0, dur=5.0, thread=gpu_stream(1)),
            make_event(start=2.0, dur=5.0, thread=gpu_stream(2)),
        ])
        t.validate()

    def test_validate_rejects_orphan_correlation(self):
        t = Trace(events=[make_event(corr=1)])
        with pytest.raises(TraceError):
            t.validate()

    def test_validate_accepts_correlated_pair(self):
        t = Trace(events=[
            make_event(name="cudaLaunchKernel", start=0.0, dur=1.0,
                       thread=cpu_thread(0), category=EventCategory.RUNTIME,
                       corr=1),
            make_event(name="kernel", start=1.0, dur=1.0, corr=1),
        ])
        t.validate()

    def test_json_roundtrip(self):
        t = Trace(events=[make_event()], metadata={"model": "tiny"})
        again = Trace.from_json(t.to_json())
        assert len(again) == 1
        assert again.metadata["model"] == "tiny"

    def test_from_json_rejects_garbage(self):
        with pytest.raises(TraceError):
            Trace.from_json("{not json")

    def test_save_load(self, tmp_path):
        t = Trace(events=[make_event()], metadata={"model": "tiny"})
        path = str(tmp_path / "trace.json")
        t.save(path)
        assert Trace.load(path).metadata == {"model": "tiny"}


class TestRenderTimeline:
    def test_empty(self):
        assert "(empty trace)" in render_timeline(Trace())

    def test_renders_rows_per_thread(self, tiny_trace):
        art = render_timeline(tiny_trace, width=60)
        assert "cpu:0" in art
        assert "gpu_stream:7" in art
        assert "#" in art  # kernels painted

    def test_max_rows(self, tiny_trace):
        art = render_timeline(tiny_trace, width=40, max_rows=1)
        assert "gpu_stream" not in art
