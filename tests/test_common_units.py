"""Tests for repro.common.units."""

import pytest

from repro.common import units


class TestTimeConstants:
    def test_millisecond_is_thousand_microseconds(self):
        assert units.MS == 1000.0 * units.US

    def test_second_is_million_microseconds(self):
        assert units.SEC == 1_000_000.0 * units.US

    def test_us_to_ms(self):
        assert units.us_to_ms(2500.0) == 2.5

    def test_ms_to_us(self):
        assert units.ms_to_us(1.5) == 1500.0

    def test_roundtrip(self):
        assert units.us_to_ms(units.ms_to_us(3.25)) == 3.25


class TestSizeConstants:
    def test_kb_mb_gb_ladder(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(8) == 1.0
        assert units.bits_to_bytes(1e9) == 125e6


class TestBandwidthConversions:
    def test_one_gbps_is_125_bytes_per_us(self):
        assert units.gbps_to_bytes_per_us(1.0) == pytest.approx(125.0)

    def test_ten_gbps(self):
        assert units.gbps_to_bytes_per_us(10.0) == pytest.approx(1250.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.gbps_to_bytes_per_us(-1.0)

    def test_memory_bandwidth_conversion(self):
        # 616 GB/s (2080Ti) ~ 616000 bytes/us
        assert units.gBps_to_bytes_per_us(616.0) == pytest.approx(616_000.0)

    def test_negative_memory_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.gBps_to_bytes_per_us(-5.0)

    def test_zero_bandwidth_allowed(self):
        assert units.gbps_to_bytes_per_us(0.0) == 0.0
