"""The prediction daemon must serve warm, memoized, bit-identical answers.

End-to-end coverage for :mod:`repro.scenarios.service`: a warm ``POST
/predict`` answer is bit-identical to the serial ``repro run`` path (the
ninth pinned determinism path, and the sweep store is the bridge — a row
computed by ``repro sweep`` is a warm service hit and vice versa), batch
answers equal N single answers exactly, the LRU session pool evicts at
``--max-sessions`` and survives engine failures by evicting only the
failing session, malformed/oversized/unauthorized requests each map to
their contract status code without hurting any other request, and one
daemon serves concurrent threaded clients correctly.  The session-cache
staleness regressions (a re-registered model builder, a rotated registry
fingerprint) fail on the old trusting code.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from helpers import make_tiny_model
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.optimizations.base import OptimizationModel
from repro.scenarios import (
    MAX_REQUEST_BYTES,
    OptimizationRegistry,
    OptimizationSpec,
    PredictServer,
    PredictService,
    Scenario,
    ScenarioRunner,
    ServiceError,
    SweepStore,
    scenario_key,
)

MODEL = "tinysvc"


def build_tinysvc(batch_size=None):
    """Module-level builder: the service's workloads are tiny and fast."""
    return make_tiny_model(batch=batch_size or 4)


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    try:
        register_model(MODEL, build_tinysvc)
    except ConfigError:
        pass


# ------------------------------------------------------------ HTTP helpers

def post(url, path, payload, token=None, raw=None):
    """POST one request; returns ``(status, parsed-JSON body)``."""
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(url + path, data=body, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url, path):
    """GET one probe; returns ``(status, parsed-JSON body)``."""
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


SCENARIO = {"model": MODEL, "optimizations": ["amp"]}


# ----------------------------------------- determinism: warm == cold == CLI

def test_cold_then_warm_roundtrip_is_memoized_and_bit_identical(tmp_path):
    """The acceptance criterion: a warm POST /predict == the serial row."""
    serial = ScenarioRunner().run(Scenario.from_dict(SCENARIO))
    store = SweepStore(str(tmp_path / "store"))
    service = PredictService(store=store)
    with PredictServer(service) as server:
        status1, cold = post(server.url, "/predict", SCENARIO)
        status2, warm = post(server.url, "/predict", SCENARIO)
    assert status1 == 200 and status2 == 200
    assert cold["cached"] is False and warm["cached"] is True
    # bit-identical across the cold compute, the store-served warm
    # answer, and the serial ScenarioRunner path (`repro run`)
    assert cold["row"] == warm["row"] == serial.as_row()
    assert cold["values"] == warm["values"] == {
        "baseline_us": serial.baseline_us,
        "predicted_us": serial.predicted_us,
    }
    assert cold["key"] == warm["key"] == store.key(serial.scenario)


def test_sweep_written_entries_are_warm_service_hits(tmp_path):
    """Ninth determinism path: sweep-computed rows serve warm, unchanged."""
    scenarios = [Scenario(model=MODEL, optimizations=["amp"]),
                 Scenario(model=MODEL)]
    store = SweepStore(str(tmp_path / "store"))
    swept = ScenarioRunner().run_grid(scenarios, parallel=1, store=store)
    service = PredictService(store=store)
    with PredictServer(service) as server:
        for scenario, outcome in zip(scenarios, swept):
            status, answer = post(server.url, "/predict", scenario.to_dict())
            assert status == 200
            assert answer["cached"] is True
            assert answer["row"] == outcome.as_row()
    # every answer came from the store: no session was ever built
    assert service.pool.stats()["built"] == 0


def test_service_writes_are_sweep_hits(tmp_path):
    """And the bridge runs both ways: service answers feed `repro sweep`."""
    store = SweepStore(str(tmp_path / "store"))
    with PredictServer(PredictService(store=store)) as server:
        status, answer = post(server.url, "/predict", SCENARIO)
        assert status == 200
    outcome, = ScenarioRunner().run_grid(
        [Scenario.from_dict(SCENARIO)], parallel=1, store=store)
    assert outcome.cached is True
    assert outcome.as_row() == answer["row"]


# ------------------------------------------------------ batch == N x single

def test_batch_equals_n_singles_bit_identically():
    """One /predict/batch == N /predict calls, byte for byte."""
    payloads = [{"model": MODEL, "optimizations": ["amp"]},
                {"model": MODEL},
                {"model": MODEL, "optimizations": ["fused_adam"]}]
    with PredictServer(PredictService()) as server:
        singles = [post(server.url, "/predict", p)[1] for p in payloads]
    with PredictServer(PredictService()) as server:
        status, batch = post(server.url, "/predict/batch",
                             {"scenarios": payloads})
    assert status == 200
    assert batch["count"] == len(payloads)
    assert batch["results"] == singles


def test_batch_grid_form_expands_server_side():
    """A {base, axes} body answers exactly like the expanded list."""
    grid = {"base": {"model": MODEL},
            "axes": {"batch_size": [2, 4]}}
    service = PredictService()
    with PredictServer(service) as server:
        status, batch = post(server.url, "/predict/batch", grid)
        assert status == 200
        assert batch["count"] == 2
        singles = [post(server.url, "/predict",
                        {"model": MODEL, "batch_size": b})[1]
                   for b in (2, 4)]
    assert [r["values"] for r in batch["results"]] == \
        [s["values"] for s in singles]


def test_batch_shares_one_warm_session_per_workload():
    """N same-workload scenarios cost one profiled session, not N."""
    service = PredictService()
    service.predict_batch({"scenarios": [
        {"model": MODEL},
        {"model": MODEL, "optimizations": ["amp"]},
        {"model": MODEL, "optimizations": ["fused_adam"]},
    ]})
    assert service.pool.stats()["built"] == 1


def test_cells_batch_runs_on_the_shared_lowering():
    """Named task-override cells answer like run_cells, bit-identically."""
    scenario = Scenario(model=MODEL)
    runner = ScenarioRunner()
    session = runner.session(scenario)
    task = session.graph.tasks()[0]
    cells = [{"label": "asis", "durations": {}},
             {"label": "free", "durations": {task.name: 0.0}}]
    service = PredictService()
    with PredictServer(service) as server:
        status, answer = post(server.url, "/predict/batch",
                              {"scenario": scenario.to_dict(),
                               "cells": cells})
    assert status == 200
    assert answer["count"] == 2
    assert answer["baseline_us"] == session.baseline_us
    asis, free = answer["results"]
    assert asis["label"] == "asis"
    assert asis["predicted_us"] == session.baseline_us
    assert free["predicted_us"] <= asis["predicted_us"]
    # bit-identical to the direct run_cells path on a fresh session
    from repro.core.compiled import CellDelta
    direct = runner.run_cells(scenario, [
        CellDelta(label="asis"),
        CellDelta(label="free", durations={task: 0.0}),
    ])
    assert [r["predicted_us"] for r in answer["results"]] == \
        [p.predicted_us for p in direct]


def test_cells_with_unknown_task_name_is_a_400():
    service = PredictService()
    with pytest.raises(ServiceError) as excinfo:
        service.predict_batch({"scenario": {"model": MODEL},
                               "cells": [{"durations": {"nope": 1.0}}]})
    assert excinfo.value.status == 400
    assert "nope" in str(excinfo.value)


# ------------------------------------------------------------- LRU eviction

def test_lru_eviction_at_max_sessions():
    """The pool holds max_sessions warm workloads; LRU pays for the next."""
    service = PredictService(max_sessions=2)
    for batch in (2, 3, 4):  # three distinct workloads
        service.predict({"model": MODEL, "batch_size": batch})
    stats = service.pool.stats()
    assert stats["built"] == 3
    assert stats["live"] == 2
    assert stats["evicted_lru"] == 1
    # batch 2 was evicted (LRU); asking again rebuilds it
    service.predict({"model": MODEL, "batch_size": 2})
    assert service.pool.stats()["built"] == 4
    # batch 4 stayed warm through all of it
    service.predict({"model": MODEL, "batch_size": 4})
    assert service.pool.stats()["built"] == 4


def test_mru_workload_stays_warm():
    """Touching a workload saves it from eviction (it is truly LRU)."""
    service = PredictService(max_sessions=2)
    service.predict({"model": MODEL, "batch_size": 2})
    service.predict({"model": MODEL, "batch_size": 3})
    service.predict({"model": MODEL, "batch_size": 2})  # refresh 2
    service.predict({"model": MODEL, "batch_size": 4})  # evicts 3, not 2
    service.predict({"model": MODEL, "batch_size": 2})
    assert service.pool.stats()["built"] == 3


# -------------------------------------------------------- request rejection

def test_malformed_json_is_a_400():
    with PredictServer(PredictService()) as server:
        status, body = post(server.url, "/predict", None,
                            raw=b"{not json at all")
    assert status == 400
    assert "JSON" in body["error"]


def test_unknown_optimization_is_a_400_with_the_validation_message():
    with PredictServer(PredictService()) as server:
        status, body = post(server.url, "/predict",
                            {"model": MODEL, "optimizations": ["warpdrive"]})
    assert status == 400
    assert "warpdrive" in body["error"]


def test_unknown_scenario_field_is_a_400():
    with PredictServer(PredictService()) as server:
        status, body = post(server.url, "/predict",
                            {"model": MODEL, "telepathy": True})
    assert status == 400
    assert "telepathy" in body["error"]


def test_unknown_model_is_a_400():
    with PredictServer(PredictService()) as server:
        status, body = post(server.url, "/predict", {"model": "unobtanium"})
    assert status == 400
    assert "unobtanium" in body["error"]


def test_oversized_body_is_a_413():
    with PredictServer(PredictService()) as server:
        status, body = post(server.url, "/predict", None,
                            raw=b"x" * (MAX_REQUEST_BYTES + 1))
    assert status == 413


def test_unknown_endpoint_is_a_404():
    with PredictServer(PredictService()) as server:
        assert post(server.url, "/frobnicate", {})[0] == 404
        assert get(server.url, "/predict")[0] == 404


def test_a_rejected_request_hurts_no_other_request():
    """Per-request degradation: a 400 leaves the daemon fully serving."""
    service = PredictService()
    with PredictServer(service) as server:
        assert post(server.url, "/predict", {"model": "nope"})[0] == 400
        assert post(server.url, "/predict", None, raw=b"broken")[0] == 400
        status, answer = post(server.url, "/predict", SCENARIO)
    assert status == 200
    assert answer["row"][0] == MODEL
    errors = service.stats()["errors"]
    assert errors.get("400") == 2


# ---------------------------------------------------------------- auth gate

def test_auth_token_gates_predictions_but_not_probes():
    with PredictServer(PredictService(), auth_token="sesame") as server:
        assert post(server.url, "/predict", SCENARIO)[0] == 401
        assert post(server.url, "/predict", SCENARIO, token="wrong")[0] == 401
        assert post(server.url, "/predict/batch",
                    {"scenarios": [SCENARIO]})[0] == 401
        status, answer = post(server.url, "/predict", SCENARIO,
                              token="sesame")
        assert status == 200 and answer["row"][0] == MODEL
        # liveness and stats probes stay open for load balancers
        assert get(server.url, "/healthz")[0] == 200
        probe_status, stats = get(server.url, "/stats")
        assert probe_status == 200
        assert stats["auth_required"] is True


# ----------------------------------------------- engine failure degradation

class _ExplodingOptimization(OptimizationModel):
    """An optimization whose graph transform always crashes the engine."""

    name = "explode"

    def apply(self, graph, context):
        """Simulate an engine bug, not a scenario-validation failure."""
        raise RuntimeError("injected engine failure")


def _exploding_registry() -> OptimizationRegistry:
    """A private registry so the injected spec never leaks global state."""
    registry = OptimizationRegistry()
    registry.register(OptimizationSpec(
        key="explode", factory=_ExplodingOptimization,
        summary="always crashes (test-only)"))
    return registry


def test_engine_failure_is_a_500_that_evicts_only_that_session():
    """A crash costs one request: 500, session evicted, pool keeps going."""
    service = PredictService(registry=_exploding_registry())
    with PredictServer(service) as server:
        ok_status, _ = post(server.url, "/predict", {"model": MODEL})
        assert ok_status == 200
        boom_status, body = post(server.url, "/predict",
                                 {"model": MODEL,
                                  "optimizations": ["explode"]})
        assert boom_status == 500
        assert "engine failure" in body["error"]
        # the pool kept serving: same workload answers again (rebuilt)
        again_status, answer = post(server.url, "/predict", {"model": MODEL})
        assert again_status == 200 and answer["row"][0] == MODEL
    stats = service.pool.stats()
    assert stats["evicted_error"] == 1
    assert service.stats()["errors"].get("500") == 1


# ------------------------------------------------- staleness (regressions)

def test_runner_session_is_rebuilt_after_model_overwrite():
    """Fails on old code: a re-registered builder must not serve stale.

    ``ScenarioRunner`` caches sessions by (model, batch, config) — a name
    — so re-registering the model behind that name used to keep serving
    the *old* model's timings.  The runner now stamps each cached session
    with its builder's identity and rebuilds on mismatch.
    """
    register_model("tinyswap", lambda batch_size=None: make_tiny_model(
        batch=batch_size or 2), overwrite=True)
    runner = ScenarioRunner()
    scenario = Scenario(model="tinyswap")
    before = runner.run(scenario).baseline_us
    register_model("tinyswap", lambda batch_size=None: make_tiny_model(
        batch=batch_size or 16), overwrite=True)
    after = runner.run(scenario).baseline_us
    assert after != before
    # and the new session answers exactly like a cold runner would
    assert after == ScenarioRunner().run(scenario).baseline_us


def test_pool_evicts_stale_model_sessions():
    """The service-level half of the same regression, with its counter."""
    register_model("tinyswap2", lambda batch_size=None: make_tiny_model(
        batch=batch_size or 2), overwrite=True)
    service = PredictService()
    payload = {"model": "tinyswap2"}
    before = service.predict(payload)["values"]["baseline_us"]
    register_model("tinyswap2", lambda batch_size=None: make_tiny_model(
        batch=batch_size or 16), overwrite=True)
    after = service.predict(payload)["values"]["baseline_us"]
    assert after != before
    assert service.pool.stats()["evicted_stale_model"] == 1


def test_pool_flushes_when_the_registry_fingerprint_rotates():
    """Fails on old code: a salt change must not trust pooled sessions."""
    registry = _exploding_registry()
    service = PredictService(registry=registry)
    service.predict({"model": MODEL})
    salt_before = service.pool.salt
    registry.register(OptimizationSpec(
        key="newcomer", factory=_ExplodingOptimization,
        summary="rotates the fingerprint (test-only)"))
    service.predict({"model": MODEL})
    stats = service.pool.stats()
    assert service.pool.salt != salt_before
    assert stats["flushed_salt"] == 1
    assert stats["built"] == 2  # the workload was rebuilt, not trusted


def test_store_keys_rotate_with_the_pool():
    """After a fingerprint rotation the memo key changes too — no stale
    store hit can masquerade as a fresh answer."""
    registry = _exploding_registry()
    service = PredictService(registry=registry)
    scenario = Scenario(model=MODEL)
    key_before = service.key_for(scenario)
    registry.register(OptimizationSpec(
        key="newcomer", factory=_ExplodingOptimization,
        summary="rotates the fingerprint (test-only)"))
    assert service.key_for(scenario) != key_before


def test_service_refuses_a_store_keyed_by_another_registry(tmp_path):
    """One keying scheme: a store under a different registry is an error."""
    store = SweepStore(str(tmp_path / "store"))  # DEFAULT_REGISTRY
    with pytest.raises(ConfigError):
        PredictService(registry=_exploding_registry(), store=store)


# --------------------------------------------------------------- concurrency

def test_concurrent_threaded_clients_against_one_daemon(tmp_path):
    """Many clients, two workloads, one daemon: every answer is exact."""
    payloads = [{"model": MODEL, "optimizations": ["amp"]},
                {"model": MODEL, "batch_size": 2}]
    expected = [ScenarioRunner().run(Scenario.from_dict(p)).as_row()
                for p in payloads]
    store = SweepStore(str(tmp_path / "store"))
    service = PredictService(store=store, workers=4)
    failures = []

    def client(worker: int) -> None:
        for round_ in range(3):
            pick = (worker + round_) % len(payloads)
            try:
                status, answer = post(server.url, "/predict", payloads[pick])
                if status != 200 or answer["row"] != expected[pick]:
                    failures.append((worker, round_, status, answer))
            except Exception as exc:  # noqa: BLE001 — collected, not raised
                failures.append((worker, round_, repr(exc)))

    with PredictServer(service) as server:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not failures
    stats = service.stats()
    assert stats["requests"]["predict"] == 24
    assert stats["errors"] == {}
    # two workloads were ever profiled, no matter the client count
    assert service.pool.stats()["built"] <= 2
    assert stats["latency"]["p50_ms"] is not None
    assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"]


def test_keys_on_the_wire_are_sweep_store_keys(tmp_path):
    """Response keys == SweepStore keys (spot check; property-tested too)."""
    store = SweepStore(str(tmp_path / "store"))
    service = PredictService(store=store)
    answer = service.predict(SCENARIO)
    scenario = Scenario.from_dict(SCENARIO)
    assert answer["key"] == store.key(scenario)
    assert answer["key"] == scenario_key(scenario, service.registry)
